"""Tests for dataset / index persistence (format v2 + the v1 migration shim)."""

import math
import re
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.shapes_data import Dataset, projectile_point_collection
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.index.linear_scan import SignatureFilteredScan
from repro.persistence import (
    _save_index_v1,
    inspect_archive,
    load_dataset_file,
    load_index,
    save_dataset,
    save_index,
)

MEASURES = (EuclideanMeasure(), DTWMeasure(radius=2))


@pytest.fixture
def dataset(rng):
    return Dataset(
        "roundtrip",
        rng.normal(size=(6, 16)),
        np.array([0, 0, 1, 1, 2, 2]),
        class_names=["a", "b", "c"],
    )


@pytest.fixture
def archive(rng):
    return projectile_point_collection(rng, 25, length=64)


def _flip_one_byte(arr: np.ndarray) -> np.ndarray:
    """Return a copy of ``arr`` with exactly one payload byte inverted."""
    original = np.ascontiguousarray(arr)
    raw = bytearray(original.tobytes())
    raw[len(raw) // 2] ^= 0xFF
    return np.frombuffer(bytes(raw), dtype=original.dtype).reshape(original.shape)


def _resave_npz(path, **overrides) -> None:
    """Rewrite an npz archive with some members replaced."""
    with np.load(path) as stored:
        contents = {key: stored[key] for key in stored.files}
    contents.update(overrides)
    np.savez(path, **contents)


class TestDatasetRoundtrip:
    def test_roundtrip_preserves_everything(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "ds.npz")
        loaded = load_dataset_file(path)
        assert loaded.name == dataset.name
        assert np.array_equal(loaded.series, dataset.series)
        assert np.array_equal(loaded.labels, dataset.labels)
        assert loaded.class_names == dataset.class_names

    def test_empty_class_names(self, rng, tmp_path):
        ds = Dataset("x", rng.normal(size=(2, 4)), np.zeros(2, dtype=int))
        loaded = load_dataset_file(save_dataset(ds, tmp_path / "x.npz"))
        assert loaded.class_names == []

    def test_class_names_stored_pickle_free(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "ds.npz")
        with np.load(path) as stored:  # allow_pickle defaults to False
            names = stored["class_names"]
        assert names.dtype.kind == "U"
        assert [str(c) for c in names] == dataset.class_names

    def test_legacy_object_array_rejected_with_clear_error(self, dataset, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            format_version=1,
            name=np.array(dataset.name),
            series=dataset.series,
            labels=dataset.labels,
            class_names=np.array(dataset.class_names, dtype=object),
        )
        with pytest.raises(ValueError, match="pickle"):
            load_dataset_file(path)

    def test_rejects_wrong_version(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "ds.npz")
        _resave_npz(path, format_version=np.array(99))
        with pytest.raises(ValueError, match="version"):
            load_dataset_file(path)


class TestIndexRoundtripV2:
    @pytest.mark.parametrize("structure", ["flat", "vptree", "rtree"])
    @pytest.mark.parametrize("mmap", [False, True])
    def test_bit_identical_answers_and_accounting(
        self, archive, rng, tmp_path, structure, mmap
    ):
        index = SignatureFilteredScan(archive, n_coefficients=8, structure=structure)
        path = save_index(index, tmp_path / "idx.npz")
        loaded = load_index(path, mmap=mmap)
        assert loaded.structure == structure
        assert loaded.store.backed_by_mmap is mmap
        for measure in MEASURES:
            query = archive[7] + rng.normal(0, 0.05, 64)
            a = index.query(query, measure)
            b = loaded.query(query, measure)
            assert b.result.index == a.result.index
            assert b.result.distance == a.result.distance  # bit-identical
            assert b.result.rotation == a.result.rotation
            assert b.result.counter.steps == a.result.counter.steps
            assert b.objects_retrieved == a.objects_retrieved
            assert b.fraction_retrieved == a.fraction_retrieved
            assert b.signature_tests == a.signature_tests

    @pytest.mark.parametrize("mmap", [False, True])
    def test_knn_roundtrip(self, archive, rng, tmp_path, mmap):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        loaded = load_index(save_index(index, tmp_path / "idx.npz"), mmap=mmap)
        query = archive[3] + rng.normal(0, 0.05, 64)
        for measure in MEASURES:
            nn_a, acc_a = index.query_knn(query, measure, k=3)
            nn_b, acc_b = loaded.query_knn(query, measure, k=3)
            assert [(n.index, n.distance, n.rotation) for n in nn_a] == [
                (n.index, n.distance, n.rotation) for n in nn_b
            ]
            assert acc_a.result.counter.steps == acc_b.result.counter.steps
            assert acc_a.fraction_retrieved == acc_b.fraction_retrieved

    def test_buffer_pool_config_survives_roundtrip(self, archive, rng, tmp_path):
        index = SignatureFilteredScan(
            archive, n_coefficients=8, page_size=4, buffer_pages=3
        )
        loaded = load_index(save_index(index, tmp_path / "idx.npz"))
        assert loaded.store.page_size == 4
        assert loaded.store.buffer_pages == 3
        # identical fetch sequence => identical page-fault accounting
        query = archive[5] + rng.normal(0, 0.05, 64)
        index.query(query, MEASURES[0])
        loaded.query(query, MEASURES[0])
        assert loaded.store.page_faults == index.store.page_faults
        assert loaded.store.retrievals == index.store.retrievals

    def test_mmap_does_not_copy_the_collection(self, archive, tmp_path):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        loaded = load_index(save_index(index, tmp_path / "idx.npz"), mmap=True)
        assert loaded.store.backed_by_mmap
        # the sidecar row is readable and equals the original data
        np.testing.assert_array_equal(loaded.store.fetch(0), archive[0])

    @pytest.mark.parametrize("name", ["fourier", "paa", "paa_lengths"])
    def test_corrupting_any_npz_array_fails_loudly(self, archive, tmp_path, name):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        path = save_index(index, tmp_path / "idx.npz")
        with np.load(path) as stored:
            tampered = _flip_one_byte(stored[name])
        _resave_npz(path, **{name: tampered})
        with pytest.raises(ValueError, match="corrupt"):
            load_index(path)

    @pytest.mark.parametrize("mmap", [False, True])
    def test_corrupting_the_data_sidecar_fails_loudly(self, archive, tmp_path, mmap):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        path = save_index(index, tmp_path / "idx.npz")
        sidecar = path.with_name(path.stem + ".data.npy")
        raw = bytearray(sidecar.read_bytes())
        raw[-3] ^= 0xFF  # one byte, inside the payload
        sidecar.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="corrupt"):
            load_index(path, mmap=mmap)

    def test_tampered_metadata_fails_loudly(self, archive, tmp_path):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        path = save_index(index, tmp_path / "idx.npz")
        with np.load(path) as stored:
            meta_json = str(stored["meta_json"])
        tampered = meta_json.replace('"page_size": 1', '"page_size": 7')
        assert tampered != meta_json
        _resave_npz(path, meta_json=np.array(tampered))
        with pytest.raises(ValueError, match="corrupt"):
            load_index(path)

    def test_missing_sidecar_is_explained(self, archive, tmp_path):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        path = save_index(index, tmp_path / "idx.npz")
        path.with_name(path.stem + ".data.npy").unlink()
        with pytest.raises(FileNotFoundError, match="sidecar"):
            load_index(path)

    def test_rejects_wrong_version(self, archive, tmp_path):
        index = SignatureFilteredScan(archive, n_coefficients=4)
        path = save_index(index, tmp_path / "idx.npz")
        _resave_npz(path, format_version=np.array(42))
        with pytest.raises(ValueError, match="version"):
            load_index(path)


class TestV1MigrationShim:
    @pytest.mark.parametrize("structure", ["flat", "vptree", "rtree"])
    def test_v1_archive_still_loads_and_answers_identically(
        self, archive, rng, tmp_path, structure
    ):
        index = SignatureFilteredScan(archive, n_coefficients=8, structure=structure)
        path = _save_index_v1(index, tmp_path / "idx_v1.npz")
        loaded = load_index(path)
        query = archive[7] + rng.normal(0, 0.05, 64)
        for measure in MEASURES:
            a = index.query(query, measure)
            b = loaded.query(query, measure)
            assert b.result.index == a.result.index
            assert math.isclose(b.result.distance, a.result.distance, rel_tol=1e-12)
            assert b.result.counter.steps == a.result.counter.steps

    def test_multi_probe_catches_tail_corruption(self, archive, tmp_path):
        # The original loader only spot-checked object 0, so corrupting the
        # *last* object's signature slipped through silently.
        index = SignatureFilteredScan(archive, n_coefficients=8)
        path = _save_index_v1(index, tmp_path / "idx_v1.npz")
        with np.load(path) as stored:
            fourier = stored["fourier"].copy()
        fourier[-1] += 1.0
        _resave_npz(path, fourier=fourier)
        with pytest.raises(ValueError, match="corrupt"):
            load_index(path)

    def test_v1_loads_with_default_store_config(self, archive, tmp_path):
        # Documented v1 limitation: the buffer-pool config was never stored.
        index = SignatureFilteredScan(
            archive, n_coefficients=8, page_size=8, buffer_pages=2
        )
        loaded = load_index(_save_index_v1(index, tmp_path / "idx_v1.npz"))
        assert loaded.store.page_size == 1
        assert loaded.store.buffer_pages == 0

    def test_v1_cannot_be_mmapped(self, archive, tmp_path):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        path = _save_index_v1(index, tmp_path / "idx_v1.npz")
        with pytest.raises(ValueError, match="v1"):
            load_index(path, mmap=True)


class TestInspectArchive:
    def test_describes_a_v2_archive(self, archive, tmp_path):
        index = SignatureFilteredScan(
            archive, n_coefficients=8, structure="vptree", page_size=4, buffer_pages=2
        )
        info = inspect_archive(save_index(index, tmp_path / "idx.npz"), verify=True)
        assert info["format_version"] == 2
        assert info["structure"] == "vptree"
        assert info["n_coefficients"] == 8
        assert info["objects"] == 25 and info["length"] == 64
        assert info["disk_store"] == {"page_size": 4, "buffer_pages": 2}
        assert set(info["checksums"]) == {"data", "fourier", "paa", "paa_lengths"}
        assert all(re.fullmatch(r"[0-9a-f]{64}", c) for c in info["checksums"].values())
        assert info["created"]["numpy"] is not None
        assert info["verified"] == {
            "data": "ok",
            "fourier": "ok",
            "paa": "ok",
            "paa_lengths": "ok",
        }

    def test_verify_reports_mismatch(self, archive, tmp_path):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        path = save_index(index, tmp_path / "idx.npz")
        sidecar = path.with_name(path.stem + ".data.npy")
        raw = bytearray(sidecar.read_bytes())
        raw[-1] ^= 0xFF
        sidecar.write_bytes(bytes(raw))
        info = inspect_archive(path, verify=True)
        assert info["verified"]["data"] == "MISMATCH"
        assert info["verified"]["fourier"] == "ok"

    def test_describes_a_v1_archive(self, archive, tmp_path):
        index = SignatureFilteredScan(archive, n_coefficients=8)
        info = inspect_archive(_save_index_v1(index, tmp_path / "idx_v1.npz"))
        assert info["format_version"] == 1
        assert info["checksums"] is None
        assert info["disk_store"] is None


class TestNoPickleAnywhere:
    def test_src_never_enables_pickle_on_load(self):
        src = Path(__file__).resolve().parent.parent / "src"
        offenders = [
            str(p.relative_to(src))
            for p in src.rglob("*.py")
            if "allow_pickle=True" in p.read_text()
        ]
        assert offenders == []
