"""Tests for uniform-scaling invariant search."""

import math

import numpy as np
import pytest

from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure, euclidean_distance
from repro.mining.scaling import scaled_candidates, scaling_invariant_search


def stretch(series, factor):
    """Reference stretch: identical formula to the implementation."""
    n = series.size
    base = np.arange(n, dtype=float)
    return np.interp(np.clip(base / factor, 0, n - 1), base, series)


class TestScaledCandidates:
    def test_factor_one_is_identity(self, random_walk):
        q = random_walk(40)
        candidates, factors = scaled_candidates(q, 1.0, 1.0, 1)
        assert factors.tolist() == [1.0]
        assert np.allclose(candidates[0], q)

    def test_grid_covers_range(self, random_walk):
        _c, factors = scaled_candidates(random_walk(20), 0.5, 2.0, 7)
        assert factors[0] == 0.5
        assert factors[-1] == 2.0
        assert len(factors) == 7

    def test_candidates_match_reference_formula(self, random_walk):
        q = random_walk(30)
        candidates, factors = scaled_candidates(q, 0.8, 1.25, 5)
        for row, s in zip(candidates, factors):
            assert np.allclose(row, stretch(q, s))

    def test_validation(self, random_walk):
        q = random_walk(10)
        with pytest.raises(ValueError):
            scaled_candidates(q, 0.0, 1.0)
        with pytest.raises(ValueError):
            scaled_candidates(q, 1.2, 0.8)
        with pytest.raises(ValueError):
            scaled_candidates(q, 0.8, 1.2, 0)


class TestScalingInvariantSearch:
    def test_exact_vs_bruteforce_over_grid(self, random_walk):
        q = random_walk(25)
        db = [random_walk(25) for _ in range(8)]
        measure = EuclideanMeasure()
        result, factor = scaling_invariant_search(db, q, measure, 0.8, 1.25, 9)
        candidates, factors = scaled_candidates(q, 0.8, 1.25, 9)
        best = math.inf
        best_i = -1
        for i, obj in enumerate(db):
            for row in candidates:
                d = euclidean_distance(obj, row)
                if d < best:
                    best, best_i = d, i
        assert result.index == best_i
        assert math.isclose(result.distance, best, rel_tol=1e-9)

    def test_recovers_planted_stretched_copy(self, random_walk):
        q = random_walk(60)
        planted_factor = 1.1
        db = [random_walk(60) for _ in range(6)]
        db[4] = stretch(q, planted_factor)
        result, factor = scaling_invariant_search(db, q, EuclideanMeasure(), 0.8, 1.25, 10)
        assert result.index == 4
        assert abs(factor - planted_factor) < 0.06
        assert result.distance < 0.5

    def test_plain_ed_misses_what_scaling_finds(self, random_walk):
        """The motivating gap: a 20% re-timed copy is far under plain ED."""
        q = random_walk(80)
        copy = stretch(q, 1.2)
        plain = euclidean_distance(q, copy)
        result, _ = scaling_invariant_search([copy], q, EuclideanMeasure(), 0.8, 1.25, 16)
        assert result.distance < 0.35 * plain

    def test_works_with_dtw(self, random_walk):
        q = random_walk(30)
        db = [random_walk(30) for _ in range(5)]
        db[2] = stretch(q, 0.9)
        result, _f = scaling_invariant_search(db, q, DTWMeasure(radius=2), 0.8, 1.25, 8)
        assert result.index == 2

    def test_counts_steps(self, random_walk):
        from repro.core.counters import StepCounter

        counter = StepCounter()
        q = random_walk(20)
        scaling_invariant_search([random_walk(20)], q, EuclideanMeasure(), counter=counter)
        assert counter.steps > 0
