"""Global top-K merge: exactness and tie-break parity with one process.

The coordinator merges per-shard canonical top-k lists with
``merge_neighbors``.  These tests pin the edge cases the sharded service
depends on: K larger than a shard, duplicate distances straddling shard
boundaries (the canonical ``(distance, index)`` tie-break must match a
single-process ``knn_search`` bit for bit), and shards contributing
nothing.
"""

import numpy as np
import pytest

from repro.core.search import merge_neighbors, merge_range_hits
from repro.distances.euclidean import EuclideanMeasure
from repro.mining.queries import Neighbor, knn_search, range_search
from repro.service.shard import shard_slices


@pytest.fixture(scope="module")
def tied_walks():
    """A collection with duplicate objects spread across shard slices."""
    rng = np.random.default_rng(5)
    data = np.cumsum(rng.normal(size=(24, 16)), axis=1)
    # Duplicates at indices that land in different thirds (shards of 8):
    data[9] = data[2]  # shard 1 duplicates shard 0
    data[17] = data[2]  # shard 2 duplicates shard 0
    data[20] = data[5]  # another cross-shard tie pair
    return data


def _sharded_knn(data, query, measure, k, n_shards):
    """Simulate the service merge: per-shard knn_search + merge_neighbors."""
    partials = []
    for lo, hi in shard_slices(len(data), n_shards):
        local = knn_search(data[lo:hi], query, measure, k=min(k, hi - lo))
        partials.append([Neighbor(nb.index + lo, nb.distance, nb.rotation) for nb in local])
    return partials


class TestMergeNeighbors:
    def test_k_larger_than_a_shard(self, tied_walks):
        measure = EuclideanMeasure()
        query = tied_walks[0] + 0.05
        k = 11  # > shard size 8: every shard contributes its full slice cap
        partials = _sharded_knn(tied_walks, query, measure, k, 3)
        merged = merge_neighbors(partials, k)
        single = knn_search(tied_walks, query, measure, k=k)
        assert [(nb.index, nb.distance, nb.rotation) for nb in merged] == [
            (nb.index, nb.distance, nb.rotation) for nb in single
        ]

    def test_k_larger_than_the_whole_dataset(self, tied_walks):
        measure = EuclideanMeasure()
        query = tied_walks[3]
        partials = _sharded_knn(tied_walks, query, measure, 100, 3)
        merged = merge_neighbors(partials, 100)
        assert len(merged) == len(tied_walks)
        single = knn_search(tied_walks, query, measure, k=100)
        assert [(nb.index, nb.distance) for nb in merged] == [
            (nb.index, nb.distance) for nb in single
        ]

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7])
    def test_duplicate_distances_across_shards_tie_break_parity(self, tied_walks, k):
        """Exact equal distances straddling shards must resolve by index."""
        measure = EuclideanMeasure()
        query = tied_walks[2]  # distance 0 to objects 2, 9 and 17
        partials = _sharded_knn(tied_walks, query, measure, k, 3)
        merged = merge_neighbors(partials, k)
        single = knn_search(tied_walks, query, measure, k=k)
        assert [(nb.index, nb.distance, nb.rotation) for nb in merged] == [
            (nb.index, nb.distance, nb.rotation) for nb in single
        ]
        if k >= 3:
            assert [nb.index for nb in merged[:3]] == [2, 9, 17]
            assert all(nb.distance == 0.0 for nb in merged[:3])

    def test_empty_shard_contribution(self):
        hit = [Neighbor(4, 1.0, 0)]
        assert merge_neighbors([[], hit, []], 2) == hit

    def test_all_empty(self):
        assert merge_neighbors([[], []], 5) == []

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            merge_neighbors([[Neighbor(0, 1.0, 0)]], 0)

    def test_merge_is_partition_invariant(self, tied_walks):
        """1, 2, 3 and 4 shards all produce the identical global answer."""
        measure = EuclideanMeasure()
        query = tied_walks[7] + 0.01
        answers = []
        for n_shards in (1, 2, 3, 4):
            partials = _sharded_knn(tied_walks, query, measure, 5, n_shards)
            merged = merge_neighbors(partials, 5)
            answers.append([(nb.index, nb.distance, nb.rotation) for nb in merged])
        assert all(answer == answers[0] for answer in answers)


class TestMergeRangeHits:
    """The explicit sharded range-merge contract: ascending global index,
    one entry per index, invariant under how the database was partitioned.

    Before this contract was pinned the coordinator concatenated shard hit
    lists in shard order -- correct only by accident of the fan-out layout.
    """

    def _sharded_range(self, data, query, measure, radius, n_shards):
        partials = []
        for lo, hi in shard_slices(len(data), n_shards):
            local = range_search(data[lo:hi], query, measure, radius=radius)
            partials.append(
                [Neighbor(nb.index + lo, nb.distance, nb.rotation) for nb in local]
            )
        return partials

    def test_matches_single_process_ordering(self, tied_walks):
        measure = EuclideanMeasure()
        query = tied_walks[4] + 0.05
        probe = knn_search(tied_walks, query, measure, k=8)
        radius = probe[-1].distance
        single = range_search(tied_walks, query, measure, radius=radius)
        assert len(single) >= 3
        partials = self._sharded_range(tied_walks, query, measure, radius, 3)
        merged = merge_range_hits(partials)
        assert [(nb.index, nb.distance, nb.rotation) for nb in merged] == [
            (nb.index, nb.distance, nb.rotation) for nb in single
        ]

    def test_partition_invariant(self, tied_walks):
        measure = EuclideanMeasure()
        query = tied_walks[2] + 0.02
        radius = knn_search(tied_walks, query, measure, k=6)[-1].distance
        answers = []
        for n_shards in (1, 2, 3, 4):
            merged = merge_range_hits(
                self._sharded_range(tied_walks, query, measure, radius, n_shards)
            )
            answers.append([(nb.index, nb.distance, nb.rotation) for nb in merged])
        assert all(answer == answers[0] for answer in answers)

    def test_sorted_and_deduplicated(self):
        # Out-of-order partitions and a repeated index: the merge must sort
        # by global index and keep one (best-distance) entry per index.
        partials = [
            [Neighbor(7, 2.0, 1), Neighbor(3, 1.0, 0)],
            [Neighbor(5, 0.5, 2), Neighbor(3, 0.75, 4)],
            [],
        ]
        merged = merge_range_hits(partials)
        assert [nb.index for nb in merged] == [3, 5, 7]
        assert merged[0].distance == 0.75  # the better duplicate wins
        assert merged[0].rotation == 4

    def test_all_empty(self):
        assert merge_range_hits([[], [], []]) == []

    def test_boundary_hit_at_exactly_radius_survives_the_merge(self):
        """An object at *exactly* the query radius is reported: range_search
        nudges its strict < pruning threshold by one part in 1e12, and the
        merge must not drop the boundary hit either."""
        measure = EuclideanMeasure()
        rng = np.random.default_rng(9)
        base = np.cumsum(rng.normal(size=16))
        data = np.stack([base + 3.0, base, base + 50.0, base + 3.0])
        query = base
        # Rotation-invariant distance to objects 0 and 3 is <= the aligned
        # euclidean distance; use the true best as the exact radius.
        exact = knn_search(data, query, measure, k=4)
        boundary = [nb for nb in exact if nb.index in (0, 3)]
        radius = boundary[0].distance
        assert radius > 0
        single = range_search(data, query, measure, radius=radius)
        assert {nb.index for nb in single} == {0, 1, 3}
        for n_shards in (2, 3, 4):
            merged = merge_range_hits(
                self._sharded_range(data, query, measure, radius, n_shards)
            )
            assert [(nb.index, nb.distance) for nb in merged] == [
                (nb.index, nb.distance) for nb in single
            ]
            assert {nb.index for nb in merged} == {0, 1, 3}


class TestCanonicalKnnTieBreak:
    """Regression: the k-NN heap must evict the largest index among ties.

    Before the fix the heap encoded ``(-distance, index, ...)``, so among
    equal worst distances the *smallest* index was evicted -- making
    boundary-tie results depend on scan history and breaking shard-merge
    parity.
    """

    def test_eviction_prefers_smaller_index_on_ties(self):
        rng = np.random.default_rng(3)
        base = np.cumsum(rng.normal(size=12))
        far = np.cumsum(rng.normal(size=12)) + 50.0
        # objects 0 and 1 tie at the same distance; object 2 is closer and
        # arrives afterwards, forcing one eviction from a full heap.
        data = np.stack([far, far, base])
        query = base + 0.25
        result = knn_search(data, query, EuclideanMeasure(), k=2)
        assert [nb.index for nb in result] == [2, 0]  # not [2, 1]

    def test_matches_brute_force_canonical_order(self, tied_walks):
        measure = EuclideanMeasure()
        query = tied_walks[5]  # ties: objects 5 and 20 at distance 0
        result = knn_search(tied_walks, query, measure, k=4)
        brute = sorted(
            (
                (nb.distance, nb.index, nb.rotation)
                for nb in knn_search(tied_walks, query, measure, k=len(tied_walks))
            ),
        )[:4]
        assert [(nb.distance, nb.index, nb.rotation) for nb in result] == brute
        assert [nb.index for nb in result[:2]] == [5, 20]
