"""Wire protocol tests: framing, limits, and measure specs."""

import asyncio
import socket
import struct

import pytest

from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.distances.lcss import LCSSMeasure
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_payload,
    encode_payload,
    measure_from_spec,
    measure_to_spec,
    recv_frame,
    send_frame,
)


class TestPayloadCodec:
    def test_round_trip_preserves_floats_bitwise(self):
        message = {"query": [0.1, 1e-300, -3.141592653589793, 2.0**-52]}
        decoded = decode_payload(encode_payload(message))
        assert decoded["query"] == message["query"]  # exact: repr round-trip

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2, 3]")

    def test_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe not json")


class TestBlockingFrames:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"op": "knn", "query": [1.0, 2.0], "k": 3}
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_is_an_error(self):
        a, b = socket.socketpair()
        try:
            body = encode_payload({"op": "ping"})
            a.sendall(struct.pack(">I", len(body)) + body[:3])
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()


class TestAsyncFrames:
    def test_async_round_trip_and_clean_eof(self):
        from repro.service.protocol import read_frame, write_frame

        async def scenario():
            server_got = []

            async def handler(reader, writer):
                while True:
                    message = await read_frame(reader)
                    if message is None:
                        break
                    server_got.append(message)
                    await write_frame(writer, {"echo": message})
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await write_frame(writer, {"op": "ping", "n": 1})
            reply = await read_frame(reader)
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            return server_got, reply

        got, reply = asyncio.run(scenario())
        assert got == [{"op": "ping", "n": 1}]
        assert reply == {"echo": {"op": "ping", "n": 1}}


class TestMeasureSpecs:
    @pytest.mark.parametrize(
        "measure",
        [
            EuclideanMeasure(),
            DTWMeasure(radius=3),
            LCSSMeasure(delta=2, epsilon=0.5),
        ],
        ids=["euclidean", "dtw", "lcss"],
    )
    def test_spec_round_trip(self, measure):
        spec = measure_to_spec(measure)
        rebuilt = measure_from_spec(decode_payload(encode_payload(spec)))
        assert rebuilt.name == measure.name
        assert rebuilt.cache_key() == measure.cache_key()

    def test_spec_pins_the_resolved_backend(self):
        measure = DTWMeasure(radius=2)
        spec = measure_to_spec(measure)
        # The parent resolves the backend once; workers must not re-run
        # auto-selection (mirrors search_many's resolve-once rule).
        assert spec["backend"] == measure.backend_name
        rebuilt = measure_from_spec(spec)
        assert rebuilt.backend_name == measure.backend_name

    def test_euclidean_spec_has_no_backend(self):
        assert "backend" not in measure_to_spec(EuclideanMeasure())

    def test_unknown_spec_raises(self):
        with pytest.raises(ProtocolError):
            measure_from_spec({"name": "hamming"})
