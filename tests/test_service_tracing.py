"""Fault-injected tracing test: a crash + replay shows up as one trace.

Satellite for the observability PR: drive a deterministic worker crash
(``crash:every=3,shard=0,op=search``) under the supervisor and assert the
affected query still produces a *single* stitched trace containing the
failed attempt span, the replay span, and the healed worker's subtree --
all with the same ``trace_id`` and correct parentage under the shard's
fan-out span.
"""

import numpy as np
import pytest

from repro.distances.euclidean import EuclideanMeasure
from repro.service import FaultPlan, RestartPolicy, save_shards, start_service_thread


@pytest.fixture(scope="module")
def walks():
    rng = np.random.default_rng(44)
    return np.cumsum(rng.normal(size=(14, 16)), axis=1)


@pytest.fixture(scope="module")
def shard_dir(walks, tmp_path_factory):
    directory = tmp_path_factory.mktemp("tracing-shards")
    save_shards(walks, directory, 2, n_coefficients=8)
    return directory


def _walk(span: dict):
    yield span
    for child in span.get("children", ()):
        yield from _walk(child)


def _spans(trace: dict):
    for root in trace["spans"]:
        yield from _walk(root)


class TestCrashReplayTrace:
    @pytest.fixture()
    def crashed_trace(self, shard_dir, walks):
        """Run queries until shard 0's third search op crashes the worker."""
        handle = start_service_thread(
            shard_dir,
            EuclideanMeasure(),
            cache_size=0,
            fault_plan=FaultPlan.parse("seed=3;crash:every=3,shard=0,op=search"),
            restart_policy=RestartPolicy(
                degrade_after=4, backoff_base=0.001, backoff_cap=0.005, jitter=0.0, seed=1
            ),
            monitor_interval=0.0,
        )
        try:
            replies = [
                handle.request({"op": "knn", "query": [float(x) for x in walks[i]], "k": 2})
                for i in range(3)
            ]
            # The supervisor healed the third query transparently.
            assert all(reply["ok"] for reply in replies), replies
            assert handle.service.workers[0].restarts == 1
            entry = handle.service.traces.to_dict()["recent"][-1]
            return entry
        finally:
            handle.close()

    def test_crash_heals_into_one_stitched_trace(self, crashed_trace):
        trace = crashed_trace["trace"]
        spans = list(_spans(trace))
        # One trace id across coordinator, failed attempt, and replay.
        assert {span["trace_id"] for span in spans} == {trace["trace_id"]}
        assert crashed_trace["error"] is False
        assert crashed_trace["missing_shards"] == []

        fanouts = {
            span["attributes"]["shard"]: span
            for span in spans
            if span["name"] == "fanout.shard"
        }
        assert set(fanouts) == {0, 1}
        crashed = fanouts[0]
        assert crashed["attributes"]["status"] == "ok"  # healed, not missing

        children = {child["name"]: child for child in crashed["children"]}
        attempt = children["worker.attempt"]
        replay = children["worker.replay"]
        assert attempt["attributes"]["outcome"] == "died"
        assert "error" in attempt["attributes"]
        assert replay["attributes"]["outcome"] == "ok"
        # The replay only starts after the failed attempt ended.
        assert replay["start"] >= attempt["start"] + attempt["duration"] - 1e-6

        # The healed worker's subtree is stitched under the same fan-out
        # span, parented by the pre-minted span id.
        chunk = children["worker.chunk"]
        assert chunk["parent_id"] == crashed["span_id"]
        assert chunk["attributes"]["shard"] == 0
        assert any(span["name"] == "worker.query" for span in _walk(chunk))

        # The untouched shard has a plain ok attempt and no replay.
        healthy_children = {child["name"] for child in fanouts[1]["children"]}
        assert "worker.replay" not in healthy_children
        assert "worker.chunk" in healthy_children

    def test_slo_window_saw_the_restart(self, shard_dir, walks):
        handle = start_service_thread(
            shard_dir,
            EuclideanMeasure(),
            cache_size=0,
            fault_plan=FaultPlan.parse("seed=3;crash:every=2,shard=1,op=search"),
            restart_policy=RestartPolicy(
                degrade_after=4, backoff_base=0.001, backoff_cap=0.005, jitter=0.0, seed=1
            ),
            monitor_interval=0.0,
        )
        try:
            for i in range(2):
                reply = handle.request(
                    {"op": "knn", "query": [float(x) for x in walks[i]], "k": 1}
                )
                assert reply["ok"], reply
            assert handle.service.workers[1].restarts == 1
            # The monitor thread folds restart deltas into the windows;
            # with monitor_interval=0 the test drives one poll by hand.
            handle.service._window_worker_events()
            events = handle.service.slo.snapshot()["1m"]["events"]
            assert events.get("restarts/shard=1", 0) >= 1
        finally:
            handle.close()
