"""Tests for the PAA reduction and the DTW index-space bound."""

import math

import numpy as np
import pytest

from repro.core.rotation import RotationSet
from repro.core.wedge_builder import build_wedge_tree
from repro.distances.dtw import DTWMeasure, dtw_distance
from repro.index.paa import lb_paa, paa, paa_envelope, segment_lengths


class TestSegmentLengths:
    def test_even_split(self):
        assert segment_lengths(12, 4).tolist() == [3, 3, 3, 3]

    def test_remainder_spread_to_front(self):
        assert segment_lengths(10, 4).tolist() == [3, 3, 2, 2]

    def test_sums_to_n(self):
        for n in (5, 17, 100):
            for segments in (1, 3, n):
                assert segment_lengths(n, segments).sum() == n

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            segment_lengths(4, 5)
        with pytest.raises(ValueError):
            segment_lengths(4, 0)


class TestPAA:
    def test_means_per_segment(self):
        series = np.array([1.0, 3.0, 5.0, 7.0])
        assert paa(series, 2).tolist() == [2.0, 6.0]

    def test_identity_at_full_resolution(self, random_walk):
        series = random_walk(16)
        assert np.allclose(paa(series, 16), series)

    def test_single_segment_is_mean(self, random_walk):
        series = random_walk(11)
        assert math.isclose(paa(series, 1)[0], series.mean())

    def test_envelope_uses_extrema(self):
        upper = np.array([1.0, 5.0, 2.0, 2.0])
        lower = np.array([-1.0, 0.0, -4.0, 0.0])
        u, lo = paa_envelope(upper, lower, 2)
        assert u.tolist() == [5.0, 2.0]
        assert lo.tolist() == [-1.0, -4.0]


class TestLBPaaAdmissibility:
    def test_lb_paa_below_lb_keogh(self, rng):
        """The PAA bound must never exceed the full-resolution LB_Keogh."""
        measure = DTWMeasure(radius=2)
        for _ in range(25):
            n = int(rng.integers(6, 40))
            q, c = rng.normal(size=n), rng.normal(size=n)
            rs = RotationSet.full(q)
            tree = build_wedge_tree(rs)
            for k in (1, min(4, tree.max_k)):
                for wedge in tree.frontier(k):
                    upper, lower = wedge.envelope_for(measure)
                    segments = min(5, n)
                    u_paa, l_paa = paa_envelope(upper, lower, segments)
                    bound = lb_paa(paa(c, segments), u_paa, l_paa, segment_lengths(n, segments))
                    full = measure.lower_bound(c, upper, lower)
                    assert bound <= full + 1e-9

    def test_lb_paa_below_true_dtw_over_rotations(self, rng):
        measure = DTWMeasure(radius=3)
        for _ in range(10):
            n = int(rng.integers(6, 25))
            q, c = rng.normal(size=n), rng.normal(size=n)
            rs = RotationSet.full(q)
            tree = build_wedge_tree(rs)
            upper, lower = tree.root.envelope_for(measure)
            segments = min(4, n)
            bound = lb_paa(
                paa(c, segments), *paa_envelope(upper, lower, segments), segment_lengths(n, segments)
            )
            true_min = min(dtw_distance(c, row, 3) for row in rs.rotations)
            assert bound <= true_min + 1e-9

    def test_zero_when_candidate_inside_envelope(self, rng):
        upper = np.full(10, 2.0)
        lower = np.full(10, -2.0)
        candidate = rng.uniform(-1, 1, 10)
        bound = lb_paa(paa(candidate, 5), *paa_envelope(upper, lower, 5), segment_lengths(10, 5))
        assert bound == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lb_paa(np.zeros(3), np.zeros(4), np.zeros(4), np.ones(4))
