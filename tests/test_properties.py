"""Property-based tests of the paper's central theorems.

These are the invariants DESIGN.md commits to: the lower-bounding
propositions (1 and 2), the no-false-dismissal guarantee of every search
strategy, and the structural properties of wedges -- each checked over
hypothesis-generated inputs rather than hand-picked examples.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.rotation import RotationSet
from repro.core.search import (
    brute_force_search,
    early_abandon_search,
    fft_search,
    wedge_search,
)
from repro.core.wedge import Wedge
from repro.core.wedge_builder import build_wedge_tree
from repro.distances.dtw import DTWMeasure, dtw_distance
from repro.distances.euclidean import EuclideanMeasure, euclidean_distance
from repro.distances.lcss import LCSSMeasure

floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


def series_pair(min_n=3, max_n=16):
    return st.integers(min_n, max_n).flatmap(
        lambda n: st.tuples(
            arrays(np.float64, n, elements=floats), arrays(np.float64, n, elements=floats)
        )
    )


def series_bundle(rows, min_n=3, max_n=12):
    return st.integers(min_n, max_n).flatmap(
        lambda n: arrays(np.float64, (rows, n), elements=floats)
    )


class TestProposition1:
    """LB_Keogh(Q, W) <= ED(Q, Cs) for every Cs enclosed by W."""

    @given(series_bundle(4))
    @settings(max_examples=100, deadline=None)
    def test_lb_keogh_bounds_every_member(self, rows):
        measure = EuclideanMeasure()
        leaves = [Wedge.from_series(row, i) for i, row in enumerate(rows)]
        wedge = Wedge.merge(Wedge.merge(leaves[0], leaves[1]), Wedge.merge(leaves[2], leaves[3]))
        query = rows.mean(axis=0) + 1.0  # arbitrary outside-ish series
        lb = measure.lower_bound(query, wedge.upper, wedge.lower)
        for row in rows:
            assert lb <= euclidean_distance(query, row) + 1e-9

    @given(series_pair())
    @settings(max_examples=100, deadline=None)
    def test_singleton_wedge_degenerates_to_euclidean(self, pair):
        q, c = pair
        measure = EuclideanMeasure()
        lb = measure.lower_bound(q, c, c)
        assert math.isclose(lb, euclidean_distance(q, c), rel_tol=1e-9, abs_tol=1e-12)


class TestProposition2:
    """LB_Keogh_DTW(Q, W) <= DTW(Q, Cs, R) for every enclosed Cs."""

    @given(series_bundle(3), st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_dtw_envelope_bounds_every_member(self, rows, radius):
        measure = DTWMeasure(radius=radius)
        leaves = [Wedge.from_series(row, i) for i, row in enumerate(rows)]
        wedge = Wedge.merge(Wedge.merge(leaves[0], leaves[1]), leaves[2])
        upper, lower = wedge.envelope_for(measure)
        query = rows[0] * 0.5 - rows[1] * 0.5 + 2.0
        lb = measure.lower_bound(query, upper, lower)
        for row in rows:
            assert lb <= dtw_distance(query, row, radius) + 1e-9

    @given(series_pair(), st.integers(0, 4))
    @settings(max_examples=100, deadline=None)
    def test_lb_keogh_dtw_bounds_single_series(self, pair, radius):
        q, c = pair
        measure = DTWMeasure(radius=radius)
        upper, lower = measure.expand_envelope(c, c)
        lb = measure.lower_bound(q, upper, lower)
        assert lb <= dtw_distance(q, c, radius) + 1e-9


class TestLCSSBound:
    @given(series_bundle(3), st.integers(0, 3), st.floats(min_value=0.01, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_envelope_bounds_every_member(self, rows, delta, epsilon):
        measure = LCSSMeasure(delta=delta, epsilon=epsilon)
        leaves = [Wedge.from_series(row, i) for i, row in enumerate(rows)]
        wedge = Wedge.merge(Wedge.merge(leaves[0], leaves[1]), leaves[2])
        upper, lower = wedge.envelope_for(measure)
        query = rows[2] + 0.7
        lb = measure.lower_bound(query, upper, lower)
        for row in rows:
            assert lb <= measure.distance(query, row) + 1e-9


class TestWedgeStructure:
    @given(series_bundle(4))
    @settings(max_examples=60, deadline=None)
    def test_merge_contains_children_envelopes(self, rows):
        leaves = [Wedge.from_series(row, i) for i, row in enumerate(rows)]
        left = Wedge.merge(leaves[0], leaves[1])
        right = Wedge.merge(leaves[2], leaves[3])
        root = Wedge.merge(left, right)
        for child in (left, right):
            assert np.all(root.upper >= child.upper - 1e-12)
            assert np.all(root.lower <= child.lower + 1e-12)
        assert root.area() >= max(left.area(), right.area()) - 1e-9

    @given(arrays(np.float64, st.integers(2, 20), elements=floats))
    @settings(max_examples=60, deadline=None)
    def test_wedge_tree_partition_invariant(self, series):
        rs = RotationSet.full(series)
        tree = build_wedge_tree(rs)
        for k in {1, 2, rs.rotations.shape[0]}:
            frontier = tree.frontier(k)
            indices = sorted(i for w in frontier for i in w.indices)
            assert indices == list(range(len(rs)))


class TestNoFalseDismissals:
    """Every strategy returns the brute-force answer, whatever the data."""

    @given(series_bundle(6, min_n=4, max_n=12))
    @settings(max_examples=40, deadline=None)
    def test_euclidean_strategies_agree(self, rows):
        query = rows[0]
        database = list(rows[1:])
        measure = EuclideanMeasure()
        reference = brute_force_search(database, query, measure)
        for result in (
            early_abandon_search(database, query, measure),
            fft_search(database, query),
            wedge_search(database, query, measure),
        ):
            assert math.isclose(result.distance, reference.distance, rel_tol=1e-7, abs_tol=1e-9)

    @given(series_bundle(4, min_n=4, max_n=10), st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_dtw_strategies_agree(self, rows, radius):
        query = rows[0]
        database = list(rows[1:])
        measure = DTWMeasure(radius=radius)
        reference = brute_force_search(database, query, measure)
        result = wedge_search(database, query, measure)
        assert math.isclose(result.distance, reference.distance, rel_tol=1e-7, abs_tol=1e-9)


class TestMetricIdentities:
    @given(arrays(np.float64, st.integers(2, 20), elements=floats), st.integers(-40, 40))
    @settings(max_examples=60, deadline=None)
    def test_red_is_shift_invariant(self, series, k):
        """RED(Q, C) == RED(Q, shift(C, k)): rotating the database object
        does not change its rotation-invariant distance to the query."""
        from repro.timeseries.ops import circular_shift

        rng = np.random.default_rng(0)
        query = rng.normal(size=series.size)
        measure = EuclideanMeasure()
        a = brute_force_search([series], query, measure).distance
        b = brute_force_search([circular_shift(series, k)], query, measure).distance
        assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)

    @given(series_pair(), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_dtw_between_ed_and_zero(self, pair, radius):
        q, c = pair
        dtw = dtw_distance(q, c, radius)
        assert 0.0 <= dtw <= euclidean_distance(q, c) + 1e-9

    @given(series_pair(), st.integers(0, 4), st.floats(min_value=0.05, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_lcss_distance_in_unit_interval(self, pair, delta, epsilon):
        q, c = pair
        measure = LCSSMeasure(delta=delta, epsilon=epsilon)
        dist = measure.distance(q, c)
        assert 0.0 <= dist <= 1.0
        assert measure.distance(q, q) == 0.0
