"""Tests for the LB_Kim / LB_Keogh / distance cascade."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cascade import CascadePolicy, lb_kim
from repro.core.counters import StepCounter
from repro.core.wedge import Wedge
from repro.distances.dtw import DTWMeasure, dtw_distance
from repro.distances.euclidean import EuclideanMeasure, euclidean_distance

floats = st.floats(min_value=-50, max_value=50, allow_nan=False)
pair_strategy = st.integers(2, 20).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=floats), arrays(np.float64, n, elements=floats)
    )
)


class TestLBKim:
    @given(pair_strategy, st.integers(0, 4))
    @settings(max_examples=100, deadline=None)
    def test_admissible_for_dtw(self, pair, radius):
        candidate, series = pair
        measure = DTWMeasure(radius=radius)
        upper, lower = measure.expand_envelope(series, series)
        bound = lb_kim(candidate, upper, lower)
        assert bound <= dtw_distance(candidate, series, radius) + 1e-9

    @given(pair_strategy)
    @settings(max_examples=100, deadline=None)
    def test_never_exceeds_lb_keogh(self, pair):
        candidate, series = pair
        measure = EuclideanMeasure()
        keogh = measure.lower_bound(candidate, series, series)
        assert lb_kim(candidate, series, series) <= keogh + 1e-9

    def test_admissible_for_wedges(self, rng):
        measure = DTWMeasure(radius=2)
        rows = rng.normal(size=(3, 15))
        wedge = Wedge.merge(
            Wedge.merge(Wedge.from_series(rows[0], 0), Wedge.from_series(rows[1], 1)),
            Wedge.from_series(rows[2], 2),
        )
        upper, lower = wedge.envelope_for(measure)
        candidate = rng.normal(size=15) + 3
        bound = lb_kim(candidate, upper, lower)
        for row in rows:
            assert bound <= dtw_distance(candidate, row, 2) + 1e-9

    def test_zero_inside_envelope(self, rng):
        upper = np.full(10, 2.0)
        lower = np.full(10, -2.0)
        assert lb_kim(rng.uniform(-1, 1, 10), upper, lower) == 0.0

    def test_detects_gross_mismatch_in_constant_time_worth(self):
        candidate = np.full(100, 50.0)
        series = np.zeros(100)
        assert lb_kim(candidate, series, series) == 50.0


class TestCascadePolicy:
    def test_exact_when_surviving(self, rng):
        measure = DTWMeasure(radius=2)
        policy = CascadePolicy(measure)
        series = rng.normal(size=20)
        candidate = series + rng.normal(0, 0.1, 20)
        leaf = Wedge.from_series(series, 0)
        dist = policy.leaf_distance(candidate, leaf, math.inf)
        assert math.isclose(dist, dtw_distance(candidate, series, 2), rel_tol=1e-9)
        assert policy.full_computations == 1

    def test_kim_tier_rejects_cheaply(self, rng):
        measure = DTWMeasure(radius=2)
        policy = CascadePolicy(measure)
        counter = StepCounter()
        series = rng.normal(size=50)
        leaf = Wedge.from_series(series, 0)
        candidate = series + 100.0
        dist = policy.leaf_distance(candidate, leaf, threshold=1.0, counter=counter)
        assert math.isinf(dist)
        assert policy.kim_rejections == 1
        assert policy.keogh_rejections == 0
        assert policy.full_computations == 0
        # First test pays the two O(n) landmark scans (candidate extremes +
        # envelope extremes) once; the Kim test itself is 4 comparisons.
        assert counter.steps <= 2 * series.size + 4
        counter.reset()
        dist = policy.leaf_distance(candidate, leaf, threshold=1.0, counter=counter)
        assert math.isinf(dist)
        assert counter.steps <= 4

    def test_keogh_tier_catches_what_kim_misses(self, rng):
        """A candidate inside the global range but accumulating many small
        violations: LB_Kim ~ small, LB_Keogh large."""
        measure = DTWMeasure(radius=0)
        policy = CascadePolicy(measure)
        series = np.zeros(64)
        candidate = np.full(64, 0.5)
        candidate[0] = candidate[-1] = 0.0  # defeat the first/last checks
        leaf = Wedge.from_series(series, 0)
        dist = policy.leaf_distance(candidate, leaf, threshold=2.0)
        assert math.isinf(dist)
        assert policy.kim_rejections == 0
        assert policy.keogh_rejections == 1

    def test_never_false_rejects(self, rng):
        measure = DTWMeasure(radius=2)
        for use_kim in (True, False):
            policy = CascadePolicy(measure, use_kim=use_kim)
            for _ in range(30):
                series = rng.normal(size=15)
                candidate = rng.normal(size=15)
                leaf = Wedge.from_series(series, 0)
                true = dtw_distance(candidate, series, 2)
                threshold = true * float(rng.uniform(0.5, 1.5))
                got = policy.leaf_distance(candidate, leaf, threshold)
                if math.isinf(got):
                    assert true >= threshold - 1e-9
                else:
                    assert math.isclose(got, true, rel_tol=1e-9)

    def test_euclidean_short_circuits_at_keogh(self, rng):
        policy = CascadePolicy(EuclideanMeasure())
        series = rng.normal(size=12)
        candidate = rng.normal(size=12)
        leaf = Wedge.from_series(series, 0)
        dist = policy.leaf_distance(candidate, leaf, math.inf)
        assert math.isclose(dist, euclidean_distance(candidate, series), rel_tol=1e-9)
        assert policy.full_computations == 0

    def test_stats_dict(self):
        policy = CascadePolicy(EuclideanMeasure())
        assert policy.stats() == {
            "leaf_candidates": 0,
            "kim_rejections": 0,
            "keogh_reached": 0,
            "keogh_rejections": 0,
            "improved_reached": 0,
            "improved_rejections": 0,
            "full_computations": 0,
        }

    def test_stats_keys_match_empty_sentinel(self):
        from repro.core.cascade import empty_tier_stats

        policy = CascadePolicy(EuclideanMeasure())
        assert policy.stats() == empty_tier_stats()

    def test_funnel_is_monotone_after_queries(self):
        rng = np.random.default_rng(5)
        measure = DTWMeasure(radius=3)
        policy = CascadePolicy(measure)
        wedges = [Wedge.from_series(rng.standard_normal(24), i) for i in range(12)]
        for candidate in rng.standard_normal((8, 24)):
            threshold = 4.0
            for leaf in wedges:
                d = policy.leaf_distance(candidate, leaf, threshold)
                if d < threshold:
                    threshold = d
        stats = policy.stats()
        assert stats["leaf_candidates"] >= stats["keogh_reached"]
        assert stats["keogh_reached"] >= stats["improved_reached"]
        assert stats["improved_reached"] >= stats["full_computations"]
        assert stats["full_computations"] > 0


class TestCascadeReset:
    """Regression: counters used to accumulate for the policy's lifetime.

    A worker reusing one ``CascadePolicy`` across queries would report a
    funnel that mixed every query it ever served; ``reset()`` lets callers
    snapshot a per-query funnel.
    """

    def test_two_sequential_queries_report_independent_funnels(self, rng):
        measure = DTWMeasure(radius=2)
        policy = CascadePolicy(measure)
        wedges = [Wedge.from_series(rng.normal(size=20), i) for i in range(6)]

        def run_query(candidate):
            threshold = math.inf
            for leaf in wedges:
                d = policy.leaf_distance(candidate, leaf, threshold)
                threshold = min(threshold, d)
            return policy.stats()

        first = run_query(rng.normal(size=20))
        policy.reset()
        second = run_query(rng.normal(size=20))
        # Each query saw exactly 6 leaf candidates; without the reset the
        # second snapshot would have reported 12.
        assert first["leaf_candidates"] == 6
        assert second["leaf_candidates"] == 6
        for stats in (first, second):
            assert stats["leaf_candidates"] >= stats["keogh_reached"]
            assert stats["keogh_reached"] >= stats["full_computations"]

    def test_reset_zeroes_every_counter(self, rng):
        from repro.core.cascade import empty_tier_stats

        policy = CascadePolicy(DTWMeasure(radius=1))
        leaf = Wedge.from_series(rng.normal(size=16), 0)
        policy.leaf_distance(rng.normal(size=16), leaf, math.inf)
        assert policy.stats() != empty_tier_stats()
        policy.reset()
        assert policy.stats() == empty_tier_stats()

    def test_reset_clears_memoised_query_state(self, rng):
        """After reset the next query re-pays the landmark scans (no stale
        extremes leak from the previous candidate)."""
        policy = CascadePolicy(DTWMeasure(radius=2))
        counter = StepCounter()
        series = rng.normal(size=50)
        leaf = Wedge.from_series(series, 0)
        candidate = series + 100.0
        policy.leaf_distance(candidate, leaf, threshold=1.0, counter=counter)
        policy.reset()
        counter.reset()
        policy.leaf_distance(candidate, leaf, threshold=1.0, counter=counter)
        # Full first-call cost again, not the <=4-step memoised retest.
        assert counter.steps > 4


class TestTierPlans:
    """Explicit tier tuples: validation, batch compatibility, funnel shape."""

    def test_default_tiers_match_legacy_flags(self):
        from repro.core.cascade import canonical_tiers

        dtw = DTWMeasure(radius=2)
        assert CascadePolicy(dtw).tiers == canonical_tiers(dtw)
        assert CascadePolicy(dtw, use_kim=False).tiers == ("keogh", "improved")
        assert CascadePolicy(EuclideanMeasure()).tiers == ("kim", "keogh")

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            CascadePolicy(DTWMeasure(radius=1), tiers=("keogh", "bogus"))

    def test_duplicate_tier_rejected(self):
        with pytest.raises(ValueError):
            CascadePolicy(DTWMeasure(radius=1), tiers=("keogh", "keogh"))

    def test_improved_without_keogh_rejected(self):
        with pytest.raises(ValueError):
            CascadePolicy(DTWMeasure(radius=1), tiers=("improved",))

    def test_unsupported_tiers_silently_dropped(self):
        # Euclidean has no LB_Improved pass; asking for it degrades cleanly.
        policy = CascadePolicy(EuclideanMeasure(), tiers=("kim", "keogh", "improved"))
        assert policy.tiers == ("kim", "keogh")

    def test_batch_compatible_orders(self):
        dtw = DTWMeasure(radius=2)
        assert CascadePolicy(dtw).batch_compatible
        assert CascadePolicy(dtw, tiers=("keogh", "improved")).batch_compatible
        assert CascadePolicy(dtw, tiers=("keogh",)).batch_compatible
        # Non-canonical order and keogh-less plans must run scalar leaves.
        assert not CascadePolicy(dtw, tiers=("keogh", "kim")).batch_compatible
        assert not CascadePolicy(dtw, tiers=("kim",)).batch_compatible
        assert not CascadePolicy(dtw, tiers=()).batch_compatible

    def test_noncanonical_order_keeps_funnel_monotone(self):
        rng = np.random.default_rng(11)
        measure = DTWMeasure(radius=2)
        policy = CascadePolicy(measure, tiers=("keogh", "kim", "improved"))
        wedges = [Wedge.from_series(rng.standard_normal(24), i) for i in range(10)]
        for candidate in rng.standard_normal((6, 24)):
            threshold = 4.0
            for leaf in wedges:
                d = policy.leaf_distance(candidate, leaf, threshold)
                if d < threshold:
                    threshold = d
        stats = policy.stats()
        assert stats["leaf_candidates"] >= stats["keogh_reached"]
        assert stats["keogh_reached"] >= stats["improved_reached"]
        assert stats["improved_reached"] >= stats["full_computations"]

    def test_empty_tier_plan_always_computes_full(self, rng):
        measure = DTWMeasure(radius=2)
        policy = CascadePolicy(measure, tiers=())
        series = rng.normal(size=20)
        leaf = Wedge.from_series(series, 0)
        candidate = series + rng.normal(0, 0.1, 20)
        dist = policy.leaf_distance(candidate, leaf, math.inf)
        # No lower bound ran; the exact distance came straight back.
        assert math.isclose(dist, dtw_distance(candidate, series, 2), rel_tol=1e-9)
        assert policy.full_computations == 1
        assert policy.kim_rejections == policy.keogh_rejections == 0
        # Pass-through credit keeps the funnel monotone even with no tiers.
        assert policy.keogh_reached == policy.improved_reached == 1
