"""Tests for the page/buffer-pool disk model."""

import pytest

from repro.index.disk import DiskStore


@pytest.fixture
def data(rng):
    return rng.normal(size=(20, 8))


class TestPaging:
    def test_default_is_one_object_per_page_no_pool(self, data):
        store = DiskStore(data)
        store.fetch(3)
        store.fetch(3)
        assert store.retrievals == 2
        assert store.page_faults == 2  # no pool: every fetch faults

    def test_n_pages(self, data):
        assert DiskStore(data, page_size=4).n_pages == 5
        assert DiskStore(data, page_size=7).n_pages == 3

    def test_pool_absorbs_rereads(self, data):
        store = DiskStore(data, page_size=1, buffer_pages=4)
        store.fetch(3)
        store.fetch(3)
        store.fetch(3)
        assert store.retrievals == 3
        assert store.page_faults == 1

    def test_page_locality(self, data):
        """Objects on the same page share a fault."""
        store = DiskStore(data, page_size=4, buffer_pages=2)
        store.fetch(0)
        store.fetch(1)
        store.fetch(2)
        store.fetch(3)  # all on page 0
        assert store.page_faults == 1
        store.fetch(4)  # page 1
        assert store.page_faults == 2

    def test_lru_eviction(self, data):
        store = DiskStore(data, page_size=1, buffer_pages=2)
        store.fetch(0)  # pool: {0}
        store.fetch(1)  # pool: {0, 1}
        store.fetch(2)  # evicts 0; pool: {1, 2}
        store.fetch(0)  # faults again
        assert store.page_faults == 4

    def test_lru_touch_order(self, data):
        store = DiskStore(data, page_size=1, buffer_pages=2)
        store.fetch(0)
        store.fetch(1)
        store.fetch(0)  # touch 0: now 1 is the LRU victim
        store.fetch(2)  # evicts 1
        store.fetch(0)  # hit
        assert store.page_faults == 3

    def test_reset_keeps_pool_warm(self, data):
        store = DiskStore(data, page_size=1, buffer_pages=4)
        store.fetch(5)
        store.reset()
        store.fetch(5)
        assert store.page_faults == 0  # warm hit after reset

    def test_flush_cools_pool(self, data):
        store = DiskStore(data, page_size=1, buffer_pages=4)
        store.fetch(5)
        store.reset()
        store.flush()
        store.fetch(5)
        assert store.page_faults == 1

    def test_repeated_query_workload_benefits(self, data):
        """Warm-cache repeat queries: the paper's main-memory point."""
        store = DiskStore(data, page_size=2, buffer_pages=100)
        workload = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        for i in workload:
            store.fetch(i)
        assert store.retrievals == 9
        assert store.page_faults == 2  # pages {0, 1} read once each

    def test_validation(self, data):
        with pytest.raises(ValueError):
            DiskStore(data, page_size=0)
        with pytest.raises(ValueError):
            DiskStore(data, buffer_pages=-1)
