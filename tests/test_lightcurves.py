"""Tests for the star light-curve simulator (Section 2.4)."""

import numpy as np
import pytest

from repro.timeseries.lightcurves import (
    LIGHT_CURVE_CLASSES,
    light_curve,
    light_curve_dataset,
)


class TestLightCurve:
    @pytest.mark.parametrize("kind", LIGHT_CURVE_CLASSES)
    def test_basic_properties(self, rng, kind):
        curve = light_curve(rng, kind, length=128)
        assert curve.shape == (128,)
        assert np.all(np.isfinite(curve))
        assert abs(curve.mean()) < 1e-9  # z-normalised

    def test_unknown_class_rejected(self, rng):
        with pytest.raises(ValueError):
            light_curve(rng, "quasar")

    def test_length_validated(self, rng):
        with pytest.raises(ValueError):
            light_curve(rng, "cepheid", length=2)

    def test_unnormalized_option(self, rng):
        curve = light_curve(rng, "cepheid", length=64, noise=0.0, normalize=False)
        assert curve.min() >= -0.5  # template is non-negative modulo stretch noise

    def test_random_phase_makes_raw_distance_large(self):
        """Same class, same seed family, different phases: raw ED is large
        but rotation-invariant ED is small."""
        from repro.core.search import brute_force_search
        from repro.distances.euclidean import EuclideanMeasure, euclidean_distance

        a = light_curve(np.random.default_rng(1), "eclipsing_binary", length=128, noise=0.01)
        b = light_curve(np.random.default_rng(2), "eclipsing_binary", length=128, noise=0.01)
        raw = euclidean_distance(a, b)
        invariant = brute_force_search([b], a, EuclideanMeasure()).distance
        assert invariant < raw

    def test_classes_differ_under_rotation_invariance(self):
        from repro.core.search import brute_force_search
        from repro.distances.euclidean import EuclideanMeasure

        measure = EuclideanMeasure()
        a1 = light_curve(np.random.default_rng(1), "cepheid", length=128, noise=0.01)
        a2 = light_curve(np.random.default_rng(2), "cepheid", length=128, noise=0.01)
        b = light_curve(np.random.default_rng(3), "eclipsing_binary", length=128, noise=0.01)
        within = brute_force_search([a2], a1, measure).distance
        between = brute_force_search([b], a1, measure).distance
        assert within < between

    def test_reproducible_with_seed(self):
        a = light_curve(np.random.default_rng(9), "rr_lyrae")
        b = light_curve(np.random.default_rng(9), "rr_lyrae")
        assert np.array_equal(a, b)


class TestLightCurveDataset:
    def test_interleaved_classes(self, rng):
        curves, labels = light_curve_dataset(rng, per_class=4, length=64)
        assert len(curves) == 12
        assert labels[:3] == list(LIGHT_CURVE_CLASSES)
        assert all(c.shape == (64,) for c in curves)

    def test_rejects_non_positive(self, rng):
        with pytest.raises(ValueError):
            light_curve_dataset(rng, per_class=0)
