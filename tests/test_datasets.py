"""Tests for the dataset registry and synthetic dataset builders."""

import numpy as np
import pytest

from repro.datasets.lightcurve_data import light_curve_collection, light_curve_labelled_dataset
from repro.datasets.registry import (
    TABLE_EIGHT,
    env_scale,
    heterogeneous_collection,
    load_dataset,
)
from repro.datasets.shapes_data import (
    Dataset,
    make_archetype_dataset,
    projectile_point_collection,
    projectile_point_dataset,
)


class TestDatasetContainer:
    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            Dataset("x", np.zeros((3, 4)), np.zeros(2))
        with pytest.raises(ValueError):
            Dataset("x", np.zeros(4), np.zeros(4))

    def test_basic_accessors(self, rng):
        ds = Dataset("demo", rng.normal(size=(6, 10)), np.array([0, 0, 1, 1, 2, 2]))
        assert len(ds) == 6
        assert ds.length == 10
        assert ds.n_classes == 3

    def test_subset_preserves_order(self, rng):
        ds = Dataset("demo", rng.normal(size=(5, 8)), np.arange(5))
        sub = ds.subset([3, 1])
        assert sub.labels.tolist() == [3, 1]
        assert np.array_equal(sub.series[0], ds.series[3])


class TestTableEightRegistry:
    def test_has_all_ten_rows(self):
        assert len(TABLE_EIGHT) == 10
        assert set(TABLE_EIGHT) == {
            "Face", "SwedishLeaves", "Chicken", "MixedBag", "OSULeaves",
            "Diatoms", "Aircraft", "Fish", "LightCurve", "Yoga",
        }

    def test_class_counts_match_paper(self):
        assert TABLE_EIGHT["Face"].n_classes == 16
        assert TABLE_EIGHT["Diatoms"].n_classes == 37
        assert TABLE_EIGHT["Yoga"].n_classes == 2
        assert TABLE_EIGHT["LightCurve"].n_classes == 3

    def test_paper_errors_recorded(self):
        assert TABLE_EIGHT["OSULeaves"].paper_ed_error == 33.71
        assert TABLE_EIGHT["Aircraft"].paper_dtw_error == 0.0

    @pytest.mark.parametrize("name", sorted(TABLE_EIGHT))
    def test_load_dataset_shape(self, name):
        ds = load_dataset(name, per_class=3, length=32)
        spec = TABLE_EIGHT[name]
        assert len(ds) == 3 * spec.n_classes
        assert ds.length >= 32
        assert ds.n_classes == spec.n_classes
        # Series are z-normalised.
        assert np.allclose(ds.series.mean(axis=1), 0.0, atol=1e-6)

    def test_load_dataset_reproducible(self):
        a = load_dataset("Fish", seed=5, per_class=3, length=32)
        b = load_dataset("Fish", seed=5, per_class=3, length=32)
        assert np.array_equal(a.series, b.series)
        c = load_dataset("Fish", seed=6, per_class=3, length=32)
        assert not np.array_equal(a.series, c.series)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("MNIST")

    def test_env_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert env_scale() == 2.5
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            env_scale()


class TestArchetypeDatasets:
    def test_classes_are_learnable(self):
        """Within-class NN distance must usually beat between-class."""
        from repro.core.search import wedge_search
        from repro.distances.euclidean import EuclideanMeasure

        rng = np.random.default_rng(0)
        ds = make_archetype_dataset(
            "probe", rng, n_classes=4, per_class=5, length=48, jitter=0.08, warp_strength=0.1, noise=0.01
        )
        measure = EuclideanMeasure()
        hits = 0
        for i in range(len(ds)):
            rest = [j for j in range(len(ds)) if j != i]
            result = wedge_search(ds.series[rest], ds.series[i], measure)
            hits += ds.labels[rest[result.index]] == ds.labels[i]
        assert hits / len(ds) > 0.7

    def test_warp_strength_increases_ed_dtw_gap(self):
        """More warping hurts Euclidean 1-NN more than DTW 1-NN."""
        from repro.classify.knn import leave_one_out_error
        from repro.distances.dtw import DTWMeasure
        from repro.distances.euclidean import EuclideanMeasure

        rng = np.random.default_rng(7)
        warped = make_archetype_dataset(
            "warped", rng, n_classes=3, per_class=6, length=40, jitter=0.05, warp_strength=0.9, noise=0.01
        )
        ed = leave_one_out_error(warped, EuclideanMeasure())
        dtw = leave_one_out_error(warped, DTWMeasure(radius=3))
        assert dtw <= ed


class TestProjectilePoints:
    def test_labelled_dataset_has_four_styles(self, rng):
        ds = projectile_point_dataset(rng, per_class=3, length=64)
        assert ds.n_classes == 4
        assert len(ds) == 12
        assert ds.length == 64

    def test_collection_shape_and_length_default(self, rng):
        archive = projectile_point_collection(rng, 10)
        assert archive.shape == (10, 251)

    def test_collection_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            projectile_point_collection(rng, 0)


class TestHeterogeneousCollection:
    def test_mixed_archive(self, rng):
        archive = heterogeneous_collection(rng, 30, length=128)
        assert archive.shape == (30, 128)
        assert np.allclose(archive.mean(axis=1), 0.0, atol=1e-6)

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            heterogeneous_collection(rng, 0)


class TestLightCurveData:
    def test_labelled(self, rng):
        ds = light_curve_labelled_dataset(rng, per_class=4, length=64)
        assert len(ds) == 12
        assert ds.n_classes == 3

    def test_collection(self, rng):
        archive = light_curve_collection(rng, 7, length=64)
        assert archive.shape == (7, 64)
