"""Tests for constrained DTW with early abandoning (Section 4.3, Figure 12)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.counters import StepCounter
from repro.distances.dtw import (
    DTWMeasure,
    band_cell_count,
    dtw_batch,
    dtw_distance,
    warping_path,
)
from repro.distances.euclidean import euclidean_distance
from repro.kernels import ENV_VAR, available_backends
from tests.conftest import naive_dtw


@pytest.fixture(scope="module", params=available_backends(), autouse=True)
def kernel_backend(request):
    """Rerun this module's whole suite under every registered kernel backend.

    Module-scoped (hypothesis forbids function-scoped fixtures inside
    ``@given`` bodies) and env-var based, because measures resolve their
    backend lazily at call time; os.environ is restored manually.
    """
    import os

    prior = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = request.param
    yield request.param
    if prior is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = prior


floats = st.floats(min_value=-50, max_value=50, allow_nan=False)
pair_strategy = st.integers(2, 25).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=floats),
        arrays(np.float64, n, elements=floats),
        st.integers(0, n),
    )
)


class TestBandCellCount:
    def test_radius_zero_is_diagonal(self):
        assert band_cell_count(10, 0) == 10

    def test_full_band_is_whole_matrix(self):
        assert band_cell_count(10, 9) == 100
        assert band_cell_count(10, 100) == 100

    def test_matches_enumeration(self):
        for n in (1, 2, 5, 13):
            for radius in range(0, n + 2):
                r = min(radius, n - 1)
                expected = sum(
                    min(n - 1, i + r) - max(0, i - r) + 1 for i in range(n)
                )
                assert band_cell_count(n, radius) == expected

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            band_cell_count(0, 1)


class TestDTWDistance:
    @given(pair_strategy)
    @settings(max_examples=100, deadline=None)
    def test_matches_naive(self, triple):
        q, c, radius = triple
        got = dtw_distance(q, c, radius)
        want = naive_dtw(q, c, min(radius, q.size - 1))
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9)

    def test_radius_zero_equals_euclidean(self, rng):
        for _ in range(10):
            q, c = rng.normal(size=17), rng.normal(size=17)
            assert math.isclose(
                dtw_distance(q, c, 0), euclidean_distance(q, c), rel_tol=1e-9
            )

    def test_identity(self, random_walk):
        series = random_walk(30)
        assert dtw_distance(series, series, 3) == 0.0

    def test_symmetry(self, rng):
        q, c = rng.normal(size=14), rng.normal(size=14)
        assert math.isclose(dtw_distance(q, c, 4), dtw_distance(c, q, 4), rel_tol=1e-9)

    def test_wider_band_never_increases_distance(self, rng):
        q, c = rng.normal(size=20), rng.normal(size=20)
        distances = [dtw_distance(q, c, radius) for radius in (0, 1, 3, 7, 19)]
        for tighter, wider in zip(distances, distances[1:]):
            assert wider <= tighter + 1e-12

    def test_dtw_never_exceeds_euclidean(self, rng):
        """The diagonal path is always available inside the band."""
        for _ in range(10):
            q, c = rng.normal(size=15), rng.normal(size=15)
            assert dtw_distance(q, c, 3) <= euclidean_distance(q, c) + 1e-12

    def test_absorbs_shift_distortion(self, rng):
        base = np.sin(np.linspace(0, 4 * np.pi, 64))
        shifted = np.roll(base, 2)
        assert dtw_distance(base, shifted, 3) < 0.3 * euclidean_distance(base, shifted) + 1e-9

    def test_single_point(self):
        assert dtw_distance([3.0], [5.0], 0) == 2.0

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            dtw_distance([1.0], [1.0], -1)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            dtw_distance([1.0, 2.0], [1.0], 1)


class TestEarlyAbandoningDTW:
    @given(pair_strategy, st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=100, deadline=None)
    def test_never_false_abandons(self, triple, r):
        q, c, radius = triple
        true = naive_dtw(q, c, min(radius, q.size - 1))
        got = dtw_distance(q, c, radius, r=r)
        if math.isinf(got):
            assert true > r - 1e-9
        else:
            assert math.isclose(got, true, rel_tol=1e-9, abs_tol=1e-9)

    def test_abandoning_saves_cells(self, rng):
        q = rng.normal(size=60)
        c = q + 50.0  # hopeless candidate
        eager, lazy = StepCounter(), StepCounter()
        dtw_distance(q, c, 5, r=1.0, counter=eager)
        dtw_distance(q, c, 5, counter=lazy)
        assert eager.early_abandons == 1
        assert eager.steps < lazy.steps
        assert lazy.steps == band_cell_count(60, 5)


class TestDTWBatch:
    def test_batch_matches_individual(self, rng):
        q = rng.normal(size=18)
        rows = rng.normal(size=(7, 18))
        dists, _steps, abandoned = dtw_batch(q, rows, radius=3)
        assert not abandoned.any()
        for row, got in zip(rows, dists):
            assert math.isclose(got, naive_dtw(q, row, 3), rel_tol=1e-9)

    def test_per_candidate_abandoning(self, rng):
        q = rng.normal(size=20)
        near = q + 0.01
        far = q + 50.0
        dists, _steps, abandoned = dtw_batch(q, np.vstack([near, far]), radius=2, r=1.0)
        assert math.isfinite(dists[0])
        assert math.isinf(dists[1])
        assert abandoned.tolist() == [False, True]

    def test_empty_threshold_abandons_all(self, rng):
        q = rng.normal(size=10)
        rows = rng.normal(size=(3, 10)) + 100
        dists, _steps, abandoned = dtw_batch(q, rows, radius=1, r=0.5)
        assert abandoned.all()
        assert np.isinf(dists).all()


class TestWarpingPath:
    def test_path_endpoints_and_monotonicity(self, rng):
        q, c = rng.normal(size=12), rng.normal(size=12)
        dist, path = warping_path(q, c, 3)
        assert path[0] == (0, 0)
        assert path[-1] == (11, 11)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert (i2 - i1, j2 - j1) in {(0, 1), (1, 0), (1, 1)}
            assert abs(i2 - j2) <= 3

    def test_distance_matches_dtw(self, rng):
        q, c = rng.normal(size=15), rng.normal(size=15)
        dist, _path = warping_path(q, c, 4)
        assert math.isclose(dist, dtw_distance(q, c, 4), rel_tol=1e-9)

    def test_path_cost_equals_distance(self, rng):
        q, c = rng.normal(size=10), rng.normal(size=10)
        dist, path = warping_path(q, c, 9)
        total = sum((q[i] - c[j]) ** 2 for i, j in path)
        assert math.isclose(math.sqrt(total), dist, rel_tol=1e-9)


class TestDTWMeasure:
    def test_envelope_expansion_widens(self, rng):
        measure = DTWMeasure(radius=2)
        series = rng.normal(size=20)
        u, lo = measure.expand_envelope(series, series)
        assert np.all(u >= series - 1e-12)
        assert np.all(lo <= series + 1e-12)

    def test_lb_not_exact_for_singleton(self):
        assert not DTWMeasure(1).lb_exact_for_singleton

    def test_cache_key_includes_radius(self):
        assert DTWMeasure(1).cache_key() != DTWMeasure(2).cache_key()
        assert DTWMeasure(3).cache_key() == DTWMeasure(3).cache_key()

    def test_batch_min_matches_naive(self, rng):
        measure = DTWMeasure(radius=2, chunk_size=3)
        q = rng.normal(size=12)
        rows = rng.normal(size=(10, 12))
        best, idx = measure.batch_min_distance(q, rows)
        naive = [naive_dtw(q, row, 2) for row in rows]
        assert idx == int(np.argmin(naive))
        assert math.isclose(best, min(naive), rel_tol=1e-9)

    def test_pairwise_cost_is_band_cells(self):
        assert DTWMeasure(5).pairwise_cost(100) == band_cell_count(100, 5)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DTWMeasure(-1)
        with pytest.raises(ValueError):
            DTWMeasure(1, chunk_size=0)
