"""Tests for the H-Merge traversal (Table 6) and the K policies."""

import math

import numpy as np
import pytest

from repro.core.counters import StepCounter
from repro.core.hmerge import DynamicKPolicy, FixedKPolicy, h_merge
from repro.core.rotation import RotationSet
from repro.core.wedge_builder import build_wedge_tree
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.distances.lcss import LCSSMeasure
from tests.conftest import naive_dtw, naive_euclidean, naive_lcss_similarity


@pytest.fixture
def query_tree(random_walk):
    series = random_walk(20)
    rs = RotationSet.full(series)
    return rs, build_wedge_tree(rs)


MEASURES = [
    (EuclideanMeasure(), lambda q, c: naive_euclidean(q, c)),
    (DTWMeasure(radius=2), lambda q, c: naive_dtw(q, c, 2)),
    (LCSSMeasure(delta=2, epsilon=0.5), lambda q, c: 1 - naive_lcss_similarity(q, c, 2, 0.5)),
]


class TestHMergeExactness:
    @pytest.mark.parametrize("measure,reference", MEASURES, ids=["ed", "dtw", "lcss"])
    @pytest.mark.parametrize("order", ["dfs", "best-first"])
    @pytest.mark.parametrize("k", [1, 3, 20])
    def test_matches_bruteforce_over_rotations(self, query_tree, random_walk, measure, reference, order, k):
        rs, tree = query_tree
        candidate = random_walk(20)
        dist, rotation = h_merge(candidate, tree.frontier(k), measure, order=order)
        naive = [reference(candidate, row) for row in rs.rotations]
        assert math.isclose(dist, min(naive), rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(naive[rotation], min(naive), rel_tol=1e-9, abs_tol=1e-9)

    def test_threshold_prunes_everything(self, query_tree, random_walk):
        _rs, tree = query_tree
        candidate = random_walk(20) + 100.0
        dist, rotation = h_merge(candidate, tree.frontier(2), EuclideanMeasure(), r=0.1)
        assert math.isinf(dist)
        assert rotation == -1

    def test_exact_threshold_boundary(self, query_tree):
        """A candidate at exactly distance r must not be returned (< r wins)."""
        rs, tree = query_tree
        candidate = rs.rotations[5]
        dist, rotation = h_merge(candidate, tree.frontier(4), EuclideanMeasure(), r=0.0)
        assert math.isinf(dist)

    def test_candidate_equal_to_some_rotation(self, query_tree):
        rs, tree = query_tree
        dist, rotation = h_merge(rs.rotations[7], tree.frontier(3), EuclideanMeasure())
        assert dist == 0.0
        assert rotation == 7


class TestHMergeEfficiency:
    def test_pruning_beats_leaf_scan(self, random_walk):
        """With a tight threshold, coarse wedges should cost fewer steps."""
        series = np.sin(np.linspace(0, 2 * np.pi, 64))  # smooth -> thin wedges
        rs = RotationSet.full(series)
        tree = build_wedge_tree(rs)
        candidate = -3.0 * np.ones(64)
        measure = EuclideanMeasure()
        coarse, fine = StepCounter(), StepCounter()
        h_merge(candidate, tree.frontier(2), measure, r=0.5, counter=coarse)
        h_merge(candidate, tree.frontier(64), measure, r=0.5, counter=fine)
        assert coarse.steps < fine.steps

    def test_counts_lb_and_distance_calls(self, query_tree, random_walk):
        _rs, tree = query_tree
        counter = StepCounter()
        h_merge(random_walk(20), tree.frontier(2), DTWMeasure(2), counter=counter)
        assert counter.lb_calls > 0
        assert counter.steps > 0

    def test_invalid_order_rejected(self, query_tree):
        _rs, tree = query_tree
        with pytest.raises(ValueError):
            h_merge(np.zeros(20), tree.frontier(1), EuclideanMeasure(), order="random")


class TestFixedKPolicy:
    def test_constant(self):
        policy = FixedKPolicy(5)
        assert policy.current_k(100) == 5
        assert policy.candidates_after_improvement(100) == []

    def test_clamped_to_max(self):
        assert FixedKPolicy(500).current_k(10) == 10

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            FixedKPolicy(0)


class TestDynamicKPolicy:
    def test_starts_at_two(self):
        assert DynamicKPolicy().current_k(100) == 2

    def test_candidates_span_both_ranges(self):
        policy = DynamicKPolicy(intervals=5)
        policy.current_k(100)
        candidates = policy.candidates_after_improvement(100)
        assert 1 in candidates
        assert 100 in candidates
        assert all(1 <= c <= 100 for c in candidates)
        assert candidates == sorted(set(candidates))

    def test_adopts_cheapest_probe(self):
        policy = DynamicKPolicy()
        policy.current_k(50)
        policy.candidates_after_improvement(50)
        policy.observe_probe(4, 1000)
        policy.observe_probe(9, 100)
        policy.observe_probe(25, 5000)
        assert policy.current_k(50) == 9

    def test_candidates_respect_small_max_k(self):
        policy = DynamicKPolicy()
        policy.current_k(3)
        candidates = policy.candidates_after_improvement(3)
        assert all(1 <= c <= 3 for c in candidates)

    def test_rejects_silly_intervals(self):
        with pytest.raises(ValueError):
            DynamicKPolicy(intervals=1)
