"""Fault-injection harness tests: grammar, determinism, real worker faults.

The unit half exercises the spec grammar and the injector's trigger
arithmetic in-process; the integration half points real shard-worker
processes at terminal fault rules and checks the parent-side handle
classifies every failure mode (crash, drop, corrupt, delay) correctly.
"""

import numpy as np
import pytest

from repro.service.faults import FAULT_ENV_VAR, FaultPlan, FaultRule
from repro.service.shard import save_shards
from repro.service.worker import ShardWorker, WorkerDiedError


class TestGrammar:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7;crash:p=0.05,shard=1;delay:ms=40,every=3;corrupt:after=10,count=1"
        )
        assert plan.seed == 7
        assert [rule.kind for rule in plan.rules] == ["crash", "delay", "corrupt"]
        crash, delay, corrupt = plan.rules
        assert crash.probability == 0.05 and crash.shard == 1
        assert delay.delay_ms == 40 and delay.every == 3
        assert corrupt.after == 10 and corrupt.count == 1

    def test_spec_round_trip(self):
        spec = "seed=11;crash:p=0.5,shard=2;delay:ms=25,every=4,op=*;drop:after=3"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_dict_round_trip(self):
        plan = FaultPlan.parse("seed=3;crash:every=17,shard=1;delay:p=0.1,ms=5")
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_parse_rejects_unknown_kind_and_keys(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode:p=1")
        with pytest.raises(ValueError, match="unknown fault rule key"):
            FaultPlan.parse("crash:frequency=2")
        with pytest.raises(ValueError, match="not key=value"):
            FaultPlan.parse("crash:p")
        with pytest.raises(ValueError, match="probability"):
            FaultPlan.parse("crash:p=1.5")

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULT_ENV_VAR: "  "}) is None
        plan = FaultPlan.from_env({FAULT_ENV_VAR: "seed=5;crash:p=0.2"})
        assert plan.seed == 5 and plan.rules[0].kind == "crash"


class TestInjector:
    def test_deterministic_across_instances(self):
        plan = FaultPlan.parse("seed=9;crash:p=0.3")
        a = plan.injector(0)
        b = plan.injector(0)
        draws_a = [a.draw("search")[1] is not None for _ in range(50)]
        draws_b = [b.draw("search")[1] is not None for _ in range(50)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_shards_draw_independently(self):
        # Different shard id -> different RNG stream (seeded by seed:shard).
        plan = FaultPlan.parse("seed=9;crash:p=0.3")
        inj_a, inj_b = plan.injector(0), plan.injector(1)
        a = [inj_a.draw("search")[1] is not None for _ in range(40)]
        b = [inj_b.draw("search")[1] is not None for _ in range(40)]
        assert a != b

    def test_every_and_after_and_count(self):
        plan = FaultPlan.parse("crash:every=3")
        inj = plan.injector(0)
        fired = [inj.draw("search")[1] is not None for _ in range(9)]
        assert fired == [False, False, True] * 3

        plan = FaultPlan.parse("crash:after=2")
        inj = plan.injector(0)
        assert [inj.draw("search")[1] is not None for _ in range(4)] == [
            False,
            False,
            True,
            True,
        ]

        plan = FaultPlan.parse("crash:count=2")
        inj = plan.injector(0)
        assert [inj.draw("search")[1] is not None for _ in range(4)] == [
            True,
            True,
            False,
            False,
        ]

    def test_shard_and_op_targeting(self):
        rule = FaultRule(kind="crash", shard=1)
        assert rule.matches(1, "search") and not rule.matches(0, "search")
        assert not rule.matches(1, "metrics")
        wildcard = FaultRule(kind="crash", op="*")
        assert wildcard.matches(5, "metrics")
        inj = FaultPlan(rules=(FaultRule(kind="crash", shard=1),)).injector(0)
        assert inj.draw("search") == ([], None)

    def test_delay_is_a_side_effect_not_terminal(self):
        plan = FaultPlan.parse("delay:ms=1;crash:every=2")
        inj = plan.injector(0)
        delays, terminal = inj.draw("search")
        assert [r.kind for r in delays] == ["delay"] and terminal is None
        delays, terminal = inj.draw("search")
        assert [r.kind for r in delays] == ["delay"] and terminal.kind == "crash"


@pytest.fixture(scope="module")
def one_shard(tmp_path_factory):
    rng = np.random.default_rng(5)
    data = np.cumsum(rng.normal(size=(8, 12)), axis=1)
    directory = tmp_path_factory.mktemp("fault-shards")
    manifest = save_shards(data, directory, 1, n_coefficients=6)
    return manifest.shard_path(0), data


def _chunk(data, n=1):
    return {
        "op": "search",
        "requests": [
            {"kind": "knn", "query": [float(x) for x in data[i % len(data)]], "k": 1}
            for i in range(n)
        ],
    }


class TestRealWorkerFaults:
    """Each terminal fault kind, against a live worker process."""

    def _worker(self, one_shard, spec):
        path, _data = one_shard
        fault_spec = FaultPlan.parse(spec).to_dict()
        return ShardWorker(0, path, 0, {"name": "euclidean"}, fault_spec=fault_spec)

    @pytest.mark.parametrize("kind", ["crash", "drop", "corrupt"])
    def test_terminal_faults_surface_as_worker_died(self, one_shard, kind):
        worker = self._worker(one_shard, f"{kind}:p=1")
        try:
            with pytest.raises(WorkerDiedError):
                worker.request(_chunk(one_shard[1]), timeout=30)
        finally:
            worker.stop()

    def test_delay_slows_but_answers(self, one_shard):
        import time

        worker = self._worker(one_shard, "delay:ms=120")
        try:
            start = time.perf_counter()
            reply = worker.request(_chunk(one_shard[1]), timeout=30)
            elapsed = time.perf_counter() - start
            assert reply["ok"] and elapsed >= 0.1
        finally:
            worker.stop()

    def test_every_counts_per_process_and_resets_on_respawn(self, one_shard):
        worker = self._worker(one_shard, "crash:every=2")
        try:
            assert worker.request(_chunk(one_shard[1]), timeout=30)["ok"]
            with pytest.raises(WorkerDiedError):
                worker.request(_chunk(one_shard[1]), timeout=30)
            worker.respawn()
            # Fresh process, fresh trigger counters: first request is safe.
            assert worker.request(_chunk(one_shard[1]), timeout=30)["ok"]
        finally:
            worker.stop()

    def test_budget_aborts_with_structured_deadline_error(self, one_shard):
        path, data = one_shard
        worker = ShardWorker(0, path, 0, {"name": "euclidean"})
        try:
            chunk = _chunk(data, n=4)
            chunk["budget_seconds"] = 0.0  # spent before the first request
            reply = worker.request(chunk, timeout=30)
            assert reply["ok"] is False
            assert reply["error_type"] == "deadline-exceeded"
            assert reply["shard"] == 0
            # The pipe is still synchronized: the next request answers.
            assert worker.request(_chunk(data), timeout=30)["ok"]
        finally:
            worker.stop()
