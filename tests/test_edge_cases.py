"""Edge cases and failure injection across the stack.

Degenerate lengths, constant series, duplicate databases, threshold
boundaries, and the FFT bound under mirroring -- the inputs most likely to
expose off-by-one or division-by-zero behaviour.
"""

import math

import numpy as np
import pytest

from repro.core.counters import StepCounter
from repro.core.rotation import RotationSet
from repro.core.search import (
    brute_force_search,
    early_abandon_search,
    fft_search,
    wedge_search,
)
from repro.core.wedge_builder import build_wedge_tree, wedge_tree_from_series
from repro.distances.dtw import DTWMeasure, dtw_distance
from repro.distances.euclidean import EuclideanMeasure, euclidean_distance
from repro.distances.lcss import LCSSMeasure
from repro.index.fourier import fourier_signature, signature_distance
from repro.timeseries.ops import circular_shift


class TestDegenerateLengths:
    def test_length_one_series_end_to_end(self):
        db = [np.array([1.0]), np.array([5.0]), np.array([2.5])]
        query = np.array([2.4])
        for search in (brute_force_search, early_abandon_search, wedge_search):
            result = search(db, query, EuclideanMeasure())
            assert result.index == 2
            assert math.isclose(result.distance, 0.1, rel_tol=1e-9)

    def test_length_two_series_all_measures(self):
        db = [np.array([0.0, 1.0]), np.array([5.0, 5.0])]
        query = np.array([1.0, 0.0])  # rotation of db[0]
        for measure in (EuclideanMeasure(), DTWMeasure(1), LCSSMeasure(1, 0.1)):
            result = wedge_search(db, query, measure)
            assert result.index == 0
            assert result.distance < 1e-9

    def test_dtw_length_one(self):
        assert dtw_distance([2.0], [5.0], 0) == 3.0
        assert dtw_distance([2.0], [5.0], 10) == 3.0

    def test_single_object_database(self, random_walk):
        db = [random_walk(10)]
        query = random_walk(10)
        a = brute_force_search(db, query, EuclideanMeasure())
        b = wedge_search(db, query, EuclideanMeasure())
        assert a.index == b.index == 0
        assert math.isclose(a.distance, b.distance, rel_tol=1e-9)


class TestConstantSeries:
    def test_constant_database_entries(self):
        db = [np.zeros(8), np.ones(8) * 3]
        query = np.full(8, 3.0)
        result = wedge_search(db, query, EuclideanMeasure())
        assert result.index == 1
        assert result.distance == 0.0

    def test_constant_query_rotations_all_identical(self):
        rs = RotationSet.full(np.full(6, 2.0))
        assert np.allclose(rs.distance_matrix(), 0.0)
        tree = build_wedge_tree(rs)
        assert tree.max_k == 6
        assert tree.root.area() == 0.0

    def test_wedge_search_with_constant_query(self, random_walk):
        db = [random_walk(12) for _ in range(5)]
        query = np.full(12, 1.5)
        a = brute_force_search(db, query, EuclideanMeasure())
        b = wedge_search(db, query, EuclideanMeasure())
        assert a.index == b.index


class TestDuplicatesAndTies:
    def test_database_of_identical_objects(self, random_walk):
        obj = random_walk(10)
        db = [obj.copy() for _ in range(6)]
        result = wedge_search(db, obj, EuclideanMeasure())
        assert result.distance == 0.0
        assert 0 <= result.index < 6

    def test_two_exact_matches_returns_first_found_by_bruteforce_too(self, random_walk):
        query = random_walk(10)
        db = [random_walk(10), circular_shift(query, 3), circular_shift(query, 7)]
        brute = brute_force_search(db, query, EuclideanMeasure())
        assert brute.distance == 0.0
        # Exactness contract is on distance, not on tie-broken index.
        wedge = wedge_search(db, query, EuclideanMeasure())
        assert wedge.distance == 0.0


class TestThresholdBoundaries:
    def test_wedge_search_with_all_objects_beyond_any_match(self, random_walk):
        """Queries far from everything still return the true (large) NN."""
        db = [random_walk(10) * 0.1 for _ in range(4)]
        query = random_walk(10) * 100
        a = brute_force_search(db, query, EuclideanMeasure())
        b = wedge_search(db, query, EuclideanMeasure())
        assert a.index == b.index
        assert math.isclose(a.distance, b.distance, rel_tol=1e-9)

    def test_early_abandon_distance_exactly_threshold(self):
        q = np.array([3.0, 4.0])  # distance 5 from origin
        measure = EuclideanMeasure()
        c = np.zeros(2)
        # r exactly the distance: Table 1 abandons only on strict excess.
        assert math.isclose(measure.distance(q, c, r=5.0), 5.0, rel_tol=1e-12)
        assert math.isinf(measure.distance(q, c, r=5.0 - 1e-9))


class TestFourierMirror:
    def test_magnitudes_invariant_to_reversal(self, random_walk):
        """|FFT| of a reversed series equals |FFT| of the original, so the
        FFT bound is also admissible for mirror-augmented queries."""
        series = random_walk(20)
        a = fourier_signature(series)
        b = fourier_signature(series[::-1].copy())
        assert np.allclose(a, b, atol=1e-9)

    def test_fft_search_with_mirror(self, random_walk):
        db = [random_walk(14) for _ in range(6)]
        query = random_walk(14)
        db[3] = circular_shift(query[::-1].copy(), 4)
        reference = brute_force_search(db, query, EuclideanMeasure(), mirror=True)
        result = fft_search(db, query, mirror=True)
        assert result.index == reference.index == 3
        assert result.distance < 1e-9


class TestCombinedInvariances:
    def test_mirror_plus_rotation_limit(self, random_walk):
        query = random_walk(24)
        db = [random_walk(24) for _ in range(5)]
        db[2] = circular_shift(query[::-1].copy(), 2)
        reference = brute_force_search(
            db, query, EuclideanMeasure(), mirror=True, max_degrees=45.0
        )
        result = wedge_search(db, query, EuclideanMeasure(), mirror=True, max_degrees=45.0)
        assert result.index == reference.index
        assert math.isclose(result.distance, reference.distance, rel_tol=1e-9)


class TestGenericWedgeTree:
    def test_tree_over_arbitrary_series(self, rng):
        rows = rng.normal(size=(7, 12))
        tree = wedge_tree_from_series(rows)
        assert tree.max_k == 7
        for row in rows:
            assert tree.root.encloses(row)

    def test_single_series(self, rng):
        tree = wedge_tree_from_series(rng.normal(size=(1, 6)))
        assert tree.root.is_leaf

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            wedge_tree_from_series(np.zeros(5))
        with pytest.raises(ValueError):
            wedge_tree_from_series(np.zeros((0, 5)))

    def test_counter_charged(self, rng):
        counter = StepCounter()
        wedge_tree_from_series(rng.normal(size=(5, 9)), counter=counter)
        assert counter.steps == 4 * 9


class TestMeasureBaseFallback:
    def test_base_batch_min_matches_loop(self, rng):
        """LCSS uses the base-class batch loop; sanity-check it directly."""
        measure = LCSSMeasure(delta=1, epsilon=0.4)
        q = rng.normal(size=10)
        rows = rng.normal(size=(5, 10))
        best, idx = measure.batch_min_distance(q, rows)
        dists = [measure.distance(q, row) for row in rows]
        assert idx == int(np.argmin(dists))
        assert math.isclose(best, min(dists), abs_tol=1e-12)

    def test_base_batch_threshold_excludes_all(self, rng):
        measure = LCSSMeasure(delta=1, epsilon=0.01)
        q = rng.normal(size=10)
        rows = rng.normal(size=(3, 10)) + 50
        best, idx = measure.batch_min_distance(q, rows, r=0.0)
        assert math.isinf(best)
        assert idx == -1


class TestSignatureEdge:
    def test_signature_of_constant_series(self):
        sig = fourier_signature(np.full(8, 4.0))
        assert sig[0] > 0  # DC carries everything
        assert np.allclose(sig[1:], 0.0, atol=1e-9)

    def test_signature_distance_bounds_on_constants(self):
        a = np.full(8, 1.0)
        b = np.full(8, 3.0)
        bound = signature_distance(fourier_signature(a), fourier_signature(b))
        assert bound <= euclidean_distance(a, b) + 1e-9
        assert bound > 0
