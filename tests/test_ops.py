"""Unit and property tests for the elementary time-series operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.timeseries.ops import (
    all_rotations,
    as_series,
    circular_shift,
    resample,
    running_extrema,
    sliding_envelope,
    smooth_time_warp,
    znormalize,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
series_strategy = arrays(np.float64, st.integers(2, 40), elements=finite_floats)


class TestAsSeries:
    def test_accepts_lists(self):
        out = as_series([1, 2, 3])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            as_series(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            as_series([])

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="finite"):
            as_series([1.0, np.nan])
        with pytest.raises(ValueError, match="finite"):
            as_series([1.0, np.inf])


class TestZNormalize:
    def test_zero_mean_unit_std(self, random_walk):
        z = znormalize(random_walk(50) * 7 + 3)
        assert abs(z.mean()) < 1e-9
        assert abs(z.std() - 1.0) < 1e-9

    def test_constant_series_becomes_zeros(self):
        assert np.all(znormalize([5.0, 5.0, 5.0]) == 0.0)

    @given(series_strategy)
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, series):
        once = znormalize(series)
        twice = znormalize(once)
        assert np.allclose(once, twice, atol=1e-9)

    def test_scale_and_offset_invariance(self, random_walk):
        base = random_walk(30)
        assert np.allclose(znormalize(base), znormalize(base * 13.7 - 4.2), atol=1e-9)


class TestCircularShift:
    def test_zero_shift_is_copy(self):
        arr = np.array([1.0, 2.0, 3.0])
        out = circular_shift(arr, 0)
        assert np.array_equal(out, arr)
        out[0] = 99
        assert arr[0] == 1.0  # no aliasing

    def test_shift_left_by_one(self):
        assert circular_shift([1, 2, 3, 4], 1).tolist() == [2, 3, 4, 1]

    def test_negative_shift(self):
        assert circular_shift([1, 2, 3, 4], -1).tolist() == [4, 1, 2, 3]

    def test_wraps_modulo_length(self):
        arr = [1, 2, 3]
        assert np.array_equal(circular_shift(arr, 4), circular_shift(arr, 1))

    @given(series_strategy, st.integers(-100, 100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, series, k):
        assert np.allclose(circular_shift(circular_shift(series, k), -k), series)


class TestAllRotations:
    def test_shape_and_rows(self):
        arr = np.array([1.0, 2.0, 3.0, 4.0])
        matrix = all_rotations(arr)
        assert matrix.shape == (4, 4)
        for j in range(4):
            assert np.array_equal(matrix[j], circular_shift(arr, j))

    def test_rows_are_independent_copies(self):
        arr = np.array([1.0, 2.0])
        matrix = all_rotations(arr)
        matrix[0, 0] = 42.0
        assert arr[0] == 1.0

    def test_single_element(self):
        assert all_rotations([7.0]).tolist() == [[7.0]]


class TestResample:
    def test_identity_when_length_matches(self):
        arr = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(resample(arr, 3), arr)

    def test_endpoint_preservation(self, random_walk):
        series = random_walk(17)
        out = resample(series, 40)
        assert abs(out[0] - series[0]) < 1e-12
        assert abs(out[-1] - series[-1]) < 1e-12

    def test_upsample_then_downsample_roughly_roundtrips(self, random_walk):
        series = random_walk(20)
        roundtrip = resample(resample(series, 200), 20)
        assert np.allclose(roundtrip, series, atol=0.15)
        assert float(np.mean(np.abs(roundtrip - series))) < 0.05

    def test_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            resample([1.0, 2.0], 0)


class TestRunningExtrema:
    def test_matches_naive(self, rng):
        mat = rng.normal(size=(5, 9))
        upper, lower = running_extrema(mat)
        assert np.array_equal(upper, mat.max(axis=0))
        assert np.array_equal(lower, mat.min(axis=0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            running_extrema(np.zeros((0, 3)))


class TestSlidingEnvelope:
    def test_radius_zero_is_identity(self, rng):
        u = rng.normal(size=8)
        lo = u - 1.0
        u2, l2 = sliding_envelope(u, lo, 0)
        assert np.array_equal(u2, u)
        assert np.array_equal(l2, lo)

    def test_known_example(self):
        u = np.array([0.0, 1.0, 0.0, 0.0])
        lo = np.array([0.0, -2.0, 0.0, 0.0])
        u2, l2 = sliding_envelope(u, lo, 1)
        assert u2.tolist() == [1.0, 1.0, 1.0, 0.0]
        assert l2.tolist() == [-2.0, -2.0, -2.0, 0.0]

    @given(series_strategy, st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_envelope_contains_original(self, series, radius):
        u, lo = sliding_envelope(series, series, radius)
        assert np.all(u >= series - 1e-12)
        assert np.all(lo <= series + 1e-12)

    def test_monotone_in_radius(self, rng):
        series = rng.normal(size=30)
        u1, l1 = sliding_envelope(series, series, 1)
        u3, l3 = sliding_envelope(series, series, 3)
        assert np.all(u3 >= u1)
        assert np.all(l3 <= l1)

    def test_radius_clipped_to_length(self, rng):
        series = rng.normal(size=5)
        u, lo = sliding_envelope(series, series, 100)
        assert np.all(u == series.max())
        assert np.all(lo == series.min())

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            sliding_envelope([1.0], [1.0], -1)

    def test_rejects_mismatched_arms(self):
        with pytest.raises(ValueError):
            sliding_envelope([1.0, 2.0], [1.0], 1)


class TestSmoothTimeWarp:
    def test_preserves_length_and_range(self, rng, random_walk):
        series = random_walk(60)
        warped = smooth_time_warp(series, rng, strength=0.5)
        assert warped.size == series.size
        assert warped.min() >= series.min() - 1e-9
        assert warped.max() <= series.max() + 1e-9

    def test_zero_strength_is_identity(self, rng, random_walk):
        series = random_walk(40)
        assert np.allclose(smooth_time_warp(series, rng, strength=0.0), series)

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            smooth_time_warp([1.0, 2.0], rng, strength=1.5)
        with pytest.raises(ValueError):
            smooth_time_warp([1.0, 2.0], rng, n_knots=1)

    def test_warp_stays_close_under_dtw(self, rng, random_walk):
        """A warped series is close in DTW but far in ED -- the point of it."""
        from repro.distances.dtw import dtw_distance
        from repro.distances.euclidean import euclidean_distance

        series = random_walk(80)
        warped = smooth_time_warp(series, rng, strength=0.8, n_knots=5)
        ed = euclidean_distance(series, warped)
        dtw = dtw_distance(series, warped, radius=8)
        assert dtw <= ed + 1e-12
