"""Tests for warping-window training and the Table-8 evaluation protocol."""

import numpy as np
import pytest

from repro.classify.evaluation import (
    TableEightRow,
    evaluate_dataset,
    holdout_error,
    train_warping_window,
)
from repro.datasets.shapes_data import Dataset, make_archetype_dataset
from repro.distances.euclidean import EuclideanMeasure


@pytest.fixture
def dataset():
    rng = np.random.default_rng(3)
    return make_archetype_dataset(
        "probe", rng, n_classes=3, per_class=5, length=32, jitter=0.08,
        warp_strength=0.4, noise=0.02,
    )


class TestTrainWarpingWindow:
    def test_returns_candidate(self, dataset):
        r = train_warping_window(dataset, candidate_radii=(1, 2, 3))
        assert r in (1, 2, 3)

    def test_single_candidate(self, dataset):
        assert train_warping_window(dataset, candidate_radii=(2,)) == 2

    def test_rejects_empty(self, dataset):
        with pytest.raises(ValueError):
            train_warping_window(dataset, candidate_radii=())


class TestHoldoutError:
    def test_zero_on_identical_split(self, dataset):
        error = holdout_error(dataset, dataset, EuclideanMeasure())
        assert error == 0.0  # every test instance is its own training twin

    def test_range(self, dataset):
        half = len(dataset) // 2
        train = dataset.subset(range(half))
        test = dataset.subset(range(half, len(dataset)))
        error = holdout_error(train, test, EuclideanMeasure())
        assert 0.0 <= error <= 100.0

    def test_rejects_empty_test(self, dataset, rng):
        empty = Dataset("e", np.zeros((0, dataset.length)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            holdout_error(dataset, empty, EuclideanMeasure())


class TestEvaluateDataset:
    def test_full_protocol(self, dataset):
        row = evaluate_dataset(dataset, candidate_radii=(1, 2), max_instances=8)
        assert row.name == "probe"
        assert row.n_classes == 3
        assert row.n_instances == 15
        assert 0.0 <= row.euclidean_error <= 100.0
        assert 0.0 <= row.dtw_error <= 100.0
        assert row.dtw_radius in (1, 2)

    def test_row_formatting(self):
        row = TableEightRow(
            name="Fish", n_classes=7, n_instances=50, euclidean_error=11.4,
            dtw_error=9.7, dtw_radius=1, paper_euclidean_error=11.43,
            paper_dtw_error=9.71,
        )
        text = row.format()
        assert "Fish" in text
        assert "11.40%" in text
        assert "{R=1}" in text
        assert "9.71" in text

    def test_row_formatting_without_paper_numbers(self):
        row = TableEightRow("X", 2, 10, 1.0, 2.0, 3)
        assert "paper -%" in row.format()
