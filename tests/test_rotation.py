"""Tests for rotation sets, lag profiles, and rotation-limited subsets."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.rotation import (
    RotationSet,
    cross_lag_profile,
    rotation_lag_profile,
    shifts_for_max_angle,
)
from repro.distances.euclidean import euclidean_distance
from repro.timeseries.ops import circular_shift

floats = st.floats(min_value=-100, max_value=100, allow_nan=False)
series_strategy = arrays(np.float64, st.integers(2, 30), elements=floats)


class TestLagProfiles:
    @given(series_strategy)
    @settings(max_examples=50, deadline=None)
    def test_profile_matches_bruteforce(self, series):
        profile = rotation_lag_profile(series)
        for lag in range(series.size):
            want = euclidean_distance(series, circular_shift(series, lag))
            assert math.isclose(profile[lag], want, rel_tol=1e-6, abs_tol=1e-6)

    def test_lag_zero_is_exactly_zero(self, random_walk):
        assert rotation_lag_profile(random_walk(64))[0] == 0.0

    def test_profile_symmetric(self, random_walk):
        profile = rotation_lag_profile(random_walk(32))
        assert np.allclose(profile[1:], profile[1:][::-1], atol=1e-9)

    def test_cross_profile_matches_bruteforce(self, rng):
        a = rng.normal(size=21)
        b = rng.normal(size=21)
        profile = cross_lag_profile(a, b)
        for lag in range(21):
            want = euclidean_distance(a, circular_shift(b, lag))
            assert math.isclose(profile[lag], want, rel_tol=1e-6, abs_tol=1e-6)

    def test_cross_profile_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            cross_lag_profile([1.0, 2.0], [1.0, 2.0, 3.0])


class TestShiftsForMaxAngle:
    def test_zero_angle_keeps_only_identity(self):
        assert shifts_for_max_angle(36, 0.0) == [0]

    def test_small_angle(self):
        # 360/12 = 30 degrees per shift; 90 degrees allows shifts 1..3 each way.
        assert shifts_for_max_angle(12, 90.0) == [0, 1, 2, 3, 9, 10, 11]

    def test_full_circle_capped_at_half(self):
        shifts = shifts_for_max_angle(10, 10000.0)
        assert len(shifts) == 10 or len(shifts) == 10  # all shifts present
        assert set(shifts) <= set(range(10))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            shifts_for_max_angle(0, 10.0)
        with pytest.raises(ValueError):
            shifts_for_max_angle(10, -1.0)


class TestRotationSet:
    def test_full_set_has_all_shifts(self, random_walk):
        series = random_walk(16)
        rs = RotationSet.full(series)
        assert len(rs) == 16
        assert rs.length == 16
        for t, shift in enumerate(rs.shifts):
            assert np.allclose(rs.rotations[t], circular_shift(series, shift))

    def test_mirror_doubles(self, random_walk):
        series = random_walk(10)
        rs = RotationSet.full(series, mirror=True)
        assert len(rs) == 20
        assert sum(rs.mirrored) == 10
        # Mirrored rows are rotations of the reversed series.
        reversed_series = series[::-1]
        for t in range(10, 20):
            assert np.allclose(
                rs.rotations[t], circular_shift(reversed_series, rs.shifts[t])
            )

    def test_rotation_limited_subset(self, random_walk):
        series = random_walk(36)
        rs = RotationSet.full(series, max_degrees=30.0)
        # 10 degrees per shift -> shifts 0, 1, 2, 3 and 33, 34, 35.
        assert sorted(rs.shifts) == [0, 1, 2, 3, 33, 34, 35]

    def test_describe(self, random_walk):
        rs = RotationSet.full(random_walk(8), mirror=True)
        assert rs.describe(0) == "shift=0"
        assert "mirrored" in rs.describe(len(rs) - 1)

    def test_distance_matrix_matches_bruteforce(self, rng):
        series = rng.normal(size=14)
        for kwargs in ({}, {"mirror": True}, {"max_degrees": 90.0}, {"mirror": True, "max_degrees": 60.0}):
            rs = RotationSet.full(series, **kwargs)
            matrix = rs.distance_matrix()
            for i in range(len(rs)):
                for j in range(len(rs)):
                    want = euclidean_distance(rs.rotations[i], rs.rotations[j])
                    assert math.isclose(matrix[i, j], want, rel_tol=1e-6, abs_tol=1e-6)

    def test_distance_matrix_symmetric_zero_diagonal(self, random_walk):
        rs = RotationSet.full(random_walk(20), mirror=True)
        matrix = rs.distance_matrix()
        assert np.allclose(matrix, matrix.T, atol=1e-9)
        assert np.allclose(np.diag(matrix), 0.0, atol=1e-9)

    @given(series_strategy, st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_rotation_invariance_of_the_set(self, series, k):
        """The rotation set of a shifted series spans the same rows."""
        rs_a = RotationSet.full(series)
        rs_b = RotationSet.full(circular_shift(series, k))
        rows_a = {tuple(np.round(row, 9)) for row in rs_a.rotations}
        rows_b = {tuple(np.round(row, 9)) for row in rs_b.rotations}
        assert rows_a == rows_b
