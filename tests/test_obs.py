"""Tests for the observability layer (tracing, metrics, query logs).

The load-bearing guarantee is at the bottom: instrumentation is a *pure
observer*.  Attaching a tracer, a metrics registry, and a query log to a
search must leave the paper's ``num_steps`` accounting bit-identical and
the answers unchanged.
"""

import io
import json

import numpy as np
import pytest

from repro.core.cascade import TIER_STAT_KEYS, empty_tier_stats
from repro.core.search import (
    brute_force_search,
    early_abandon_search,
    search_many,
    wedge_search,
)
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.index.linear_scan import SignatureFilteredScan
from repro.obs.metrics import (
    MetricsRegistry,
    global_registry,
    parse_prometheus_text,
    record_query,
    registry_from_dict,
)
from repro.obs.provenance import provenance_block
from repro.obs.querylog import QueryLogger, read_query_log
from repro.obs.report import (
    format_summary,
    funnel_is_monotone,
    summarize_query_log,
    tier_funnel,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


@pytest.fixture(scope="module")
def walks():
    rng = np.random.default_rng(7)
    data = np.cumsum(rng.normal(size=(20, 24)), axis=1)
    data -= data.mean(axis=1, keepdims=True)
    data /= data.std(axis=1, keepdims=True)
    return data


class TestTracer:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer", phase=1) as outer:
            with tracer.span("inner"):
                tracer.event("tick", n=3)
        assert [root.name for root in tracer.roots] == ["outer"]
        assert outer.attributes == {"phase": 1}
        (inner,) = outer.children
        assert inner.name == "inner"
        assert [child.name for child in inner.children] == ["tick"]
        assert inner.children[0].duration == 0.0
        assert outer.duration >= inner.duration >= 0.0

    def test_set_chains_and_overwrites(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            assert span.set(a=2, b=3) is span
        assert span.attributes == {"a": 2, "b": 3}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.roots
        assert span.attributes["error"] == "RuntimeError"
        assert span.end is not None

    def test_cap_counts_dropped_spans(self):
        tracer = Tracer(max_spans=2)
        with tracer.span("a"):
            tracer.event("b")
            tracer.event("c")
            with tracer.span("d"):
                pass
        assert tracer.dropped == 2
        assert len(list(tracer.iter_spans())) == 2
        assert "2 spans dropped" in tracer.format_tree()

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_find_and_to_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("query"):
            tracer.event("hit")
            tracer.event("hit")
        assert len(tracer.find("hit")) == 2
        assert tracer.find("miss") == []
        payload = json.loads(json.dumps(tracer.to_dict()))
        assert payload["span_count"] == 3
        assert payload["dropped"] == 0
        assert payload["spans"][0]["name"] == "query"

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("x", a=1) as span:
            assert span.set(b=2) is span
        assert NULL_TRACER.event("y") is None
        assert NULL_TRACER.find("x") == []
        assert NULL_TRACER.to_dict() == {
            "trace_id": None,
            "spans": [],
            "span_count": 0,
            "dropped": 0,
            "dropped_spans": 0,
        }
        assert NULL_TRACER.format_tree() == ""

    def test_spans_carry_w3c_style_trace_context(self):
        tracer = Tracer()
        assert len(tracer.trace_id) == 32
        with tracer.span("parent") as parent:
            tracer.event("child")
        assert parent.trace_id == tracer.trace_id
        assert len(parent.span_id) == 16
        assert parent.parent_id is None
        (child,) = parent.children
        assert child.trace_id == tracer.trace_id
        assert child.parent_id == parent.span_id
        payload = parent.to_dict()
        assert payload["trace_id"] == tracer.trace_id
        assert payload["span_id"] == parent.span_id

    def test_tracer_adopts_remote_context(self):
        remote = Tracer(trace_id="ab" * 16, parent_id="cd" * 8)
        with remote.span("worker.chunk") as root:
            pass
        assert root.trace_id == "ab" * 16
        assert root.parent_id == "cd" * 8
        assert remote.to_dict()["trace_id"] == "ab" * 16

    def test_attach_records_explicit_timing_and_preminted_id(self):
        tracer = Tracer()
        with tracer.span("batch") as batch:
            pass
        span = tracer.attach(batch, "fanout", 10.0, 10.5, span_id="ee" * 8, shard=3)
        assert span in batch.children
        assert span.span_id == "ee" * 8
        assert span.parent_id == batch.span_id
        assert span.duration == pytest.approx(0.5)
        assert span.attributes["shard"] == 3

    def test_attach_tree_rebases_remote_clock(self):
        worker = Tracer(trace_id="ab" * 16)
        with worker.span("worker.chunk") as chunk:
            with worker.span("worker.query"):
                pass
        payload = chunk.to_dict()

        local = Tracer(trace_id="ab" * 16)
        with local.span("batch") as batch:
            pass
        shift = 100.0 - payload["start"]
        stitched = local.attach_tree(batch, payload, shift=shift)
        assert stitched.start == pytest.approx(100.0)
        assert stitched.duration == pytest.approx(payload["duration"])
        assert stitched.children[0].name == "worker.query"
        assert stitched.trace_id == "ab" * 16
        # Remote span ids survive stitching, so parentage stays intact.
        assert stitched.children[0].parent_id == stitched.span_id

    def test_attach_tree_drops_whole_subtree_at_cap(self):
        worker = Tracer()
        with worker.span("root"):
            worker.event("a")
            worker.event("b")
        payload = worker.roots[0].to_dict()

        tight = Tracer(max_spans=2)
        with tight.span("batch") as batch:
            pass
        assert tight.attach_tree(batch, payload) is None
        assert tight.dropped == 3
        assert tight.to_dict()["dropped_spans"] == 3
        assert batch.children == []

    def test_dropped_spans_reported_in_trace_output(self):
        tracer = Tracer(max_spans=1)
        with tracer.span("only"):
            for _ in range(5):
                tracer.event("lost")
        assert tracer.attach(None, "late", 0.0, 1.0) is None
        payload = tracer.to_dict()
        assert payload["dropped_spans"] == 6
        assert payload["dropped"] == 6
        assert payload["span_count"] == 1


class TestMetricsRegistry:
    def test_counter_labels_and_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "help text")
        counter.inc(2, kind="a")
        counter.inc(kind="a")
        counter.inc(5, kind="b")
        assert counter.value(kind="a") == 3
        assert counter.value(kind="b") == 5
        assert counter.value(kind="missing") == 0

    def test_counter_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_schema_is_enforced(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(tier="kim")
        with pytest.raises(ValueError):
            counter.inc(measure="dtw")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_invalid_metric_name_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")

    def test_histogram_buckets_and_prometheus_text(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", "seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        text = registry.to_prometheus()
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="1"} 2' in text
        assert 'latency_bucket{le="+Inf"} 3' in text
        assert "latency_count 3" in text
        assert "# TYPE latency histogram" in text

    def test_histogram_rejects_unordered_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.5))

    def test_merge_sums_counters_and_histograms_last_writes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(2)
        b.counter("n_total").inc(3)
        a.gauge("ratio").set(0.25)
        b.gauge("ratio").set(0.75)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.counter("n_total").value() == 5
        assert a.gauge("ratio").value() == 0.75
        state = a.histogram("h", buckets=(1.0,)).state()
        assert state["count"] == 2
        assert state["counts"] == [1, 1]

    def test_merge_rejects_bucket_layout_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_to_json_parses(self):
        registry = MetricsRegistry()
        registry.counter("n_total").inc(7, kind="x")
        payload = json.loads(registry.to_json())
        assert payload["n_total"]["type"] == "counter"
        assert payload["n_total"]["samples"] == [{"labels": {"kind": "x"}, "value": 7.0}]

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()

    def test_record_query_populates_standard_families(self, walks):
        registry = MetricsRegistry()
        measure = EuclideanMeasure()
        result = wedge_search(list(walks[1:]), walks[0], measure)
        record_query(result, measure.name, wall_seconds=0.01, registry=registry)
        assert registry.counter("queries_total").value(strategy="wedge", measure="euclidean") == 1
        reached = registry.counter("cascade_reached_total")
        assert reached.value(tier="kim", measure="euclidean") == result.tier_stats["leaf_candidates"]
        assert (
            reached.value(tier="full", measure="euclidean")
            == result.tier_stats["full_computations"]
        )
        steps_state = registry.histogram("query_steps").state(
            strategy="wedge", measure="euclidean"
        )
        assert steps_state["count"] == 1
        assert steps_state["sum"] == result.counter.steps


class TestPrometheusEscaping:
    """Exposition-format escaping: hostile label values must round-trip."""

    HOSTILE = [
        'back\\slash"quote',
        "new\nline",
        'all\\three:"\n\\"',
        "plain",
        '\\n',  # a literal backslash-n, NOT a newline
    ]

    def test_hostile_label_values_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("hostile_total", "counts hostile labels")
        for i, value in enumerate(self.HOSTILE):
            counter.inc(i + 1, path=value)
        parsed = parse_prometheus_text(registry.to_prometheus())
        got = {labels["path"]: value for name, labels, value in parsed["samples"]}
        for i, value in enumerate(self.HOSTILE):
            assert got[value] == i + 1, (value, got)

    def test_each_escaped_line_is_single_line(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1, v="a\nb")
        text = registry.to_prometheus()
        for line in text.splitlines():
            assert line.startswith(("#", "c_total"))
        assert 'v="a\\nb"' in text

    def test_help_text_escapes_newline_and_backslash(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline \\two").inc(1)
        text = registry.to_prometheus()
        assert "# HELP c_total line one\\nline \\\\two" in text
        parsed = parse_prometheus_text(text)
        assert parsed["families"]["c_total"]["help"] == "line one\nline \\two"

    def test_histogram_labels_escape_too(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5, tag='q"uote')
        parsed = parse_prometheus_text(registry.to_prometheus())
        buckets = [s for s in parsed["samples"] if s[0] == "h_bucket"]
        assert buckets and all(s[1]["tag"] == 'q"uote' for s in buckets)
        le_values = {s[1]["le"] for s in buckets}
        assert le_values == {"1", "+Inf"}


class TestRegistryFromDict:
    """to_dict() -> registry_from_dict is the service's snapshot transport."""

    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("n_total", "a counter").inc(3, kind="x")
        registry.counter("n_total").inc(1.5, kind="y")
        registry.gauge("ratio", "a gauge").set(0.75, slot="a")
        hist = registry.histogram("lat", "a histogram", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value, op="knn")
        return registry

    def test_round_trips_through_json(self):
        original = self._populated()
        rebuilt = registry_from_dict(json.loads(original.to_json()))
        assert rebuilt.to_dict() == original.to_dict()
        assert rebuilt.to_prometheus() == original.to_prometheus()

    def test_rebuilt_registry_merges_like_the_original(self):
        base = MetricsRegistry()
        base.counter("n_total").inc(10, kind="x")
        base.merge(registry_from_dict(self._populated().to_dict()))
        assert base.counter("n_total").value(kind="x") == 13

    def test_unknown_family_type_raises(self):
        with pytest.raises(ValueError):
            registry_from_dict({"bad": {"type": "summary", "samples": []}})


class TestQueryLogger:
    def test_log_result_round_trips(self, tmp_path, walks):
        path = tmp_path / "runs.jsonl"
        measure = EuclideanMeasure()
        result = early_abandon_search(list(walks[1:]), walks[0], measure)
        with QueryLogger(path) as log:
            log.log_result(result, measure.name, wall_seconds=0.5, query_id=9, note="smoke")
        (record,) = read_query_log(path)
        assert record["query_id"] == 9
        assert record["strategy"] == "early-abandon"
        assert record["measure"] == "euclidean"
        assert record["result_index"] == result.index
        assert record["steps"] == result.counter.steps
        assert record["counter"] == result.counter.snapshot()
        assert record["tier_stats"] == dict(result.tier_stats)
        assert record["wall_seconds"] == 0.5
        assert record["note"] == "smoke"

    def test_missing_query_ids_get_sequence_numbers(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with QueryLogger(path) as log:
            log.log({"strategy": "wedge"})
            log.log({"strategy": "wedge"})
        ids = [record["query_id"] for record in read_query_log(path)]
        assert ids == [0, 1]

    def test_numpy_and_inf_values_are_coerced(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with QueryLogger(path) as log:
            log.log(
                {
                    "query_id": np.int64(4),
                    "distance": float("inf"),
                    "scores": (np.float64(1.5), float("nan")),
                }
            )
        (record,) = read_query_log(path)
        assert record["query_id"] == 4
        assert record["distance"] == "inf"
        assert record["scores"] == [1.5, "nan"]

    def test_file_like_destination_is_not_closed(self):
        sink = io.StringIO()
        log = QueryLogger(sink)
        log.log({"query_id": 1})
        log.close()
        assert not sink.closed
        assert json.loads(sink.getvalue())["query_id"] == 1

    def test_closed_logger_raises(self, tmp_path):
        log = QueryLogger(tmp_path / "runs.jsonl")
        log.close()
        with pytest.raises(ValueError):
            log.log({})

    def test_malformed_line_names_its_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\n\nnot json\n')
        with pytest.raises(ValueError, match=":3:"):
            read_query_log(path)

    def test_size_based_rotation_keeps_n_files(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        # Each record is ~40 bytes; cap at ~2 records per file.
        with QueryLogger(path, max_bytes=90, keep=2) as log:
            for i in range(10):
                log.log({"query_id": i})
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["runs.jsonl", "runs.jsonl.1", "runs.jsonl.2"]
        # Live file holds the newest records, .1 the next-newest, etc.
        live_ids = [r["query_id"] for r in read_query_log(path)]
        prev_ids = [r["query_id"] for r in read_query_log(tmp_path / "runs.jsonl.1")]
        assert live_ids[-1] == 9
        assert max(prev_ids) < min(live_ids)
        # No record straddles files and none were lost within the window.
        surviving = prev_ids + live_ids
        assert surviving == sorted(surviving)

    def test_rotation_respects_preexisting_size_on_append(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with QueryLogger(path, max_bytes=80) as log:
            log.log({"query_id": 0})
        with QueryLogger(path, append=True, max_bytes=80) as log:
            log.log({"query_id": 1})
            log.log({"query_id": 2})
        assert (tmp_path / "runs.jsonl.1").exists()

    def test_rotation_rejects_file_like_and_bad_args(self, tmp_path):
        with pytest.raises(ValueError):
            QueryLogger(io.StringIO(), max_bytes=100)
        with pytest.raises(ValueError):
            QueryLogger(tmp_path / "x.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            QueryLogger(tmp_path / "x.jsonl", max_bytes=100, keep=0)


class TestReport:
    def test_tier_funnel_stages(self):
        stats = {
            "leaf_candidates": 10,
            "keogh_reached": 8,
            "improved_reached": 4,
            "full_computations": 2,
        }
        assert tier_funnel(stats) == [
            ("kim", 10),
            ("keogh", 8),
            ("improved", 4),
            ("full-distance", 2),
        ]
        assert funnel_is_monotone(stats)

    def test_funnel_inversion_is_flagged(self):
        stats = {"leaf_candidates": 5, "keogh_reached": 9}
        assert not funnel_is_monotone(stats)

    def test_summarize_and_format(self, tmp_path, walks):
        path = tmp_path / "runs.jsonl"
        measure = DTWMeasure(radius=2)
        with QueryLogger(path) as log:
            for qid in (0, 3):
                db = list(np.delete(walks, qid, axis=0))
                wedge_search(db, walks[qid], measure, query_log=log, query_id=qid)
        summary = summarize_query_log(path, top=1)
        assert summary["queries"] == 2
        assert summary["strategies"]["wedge"]["queries"] == 2
        assert summary["funnel_monotone"] is True
        assert len(summary["top_slow"]) == 1
        text = format_summary(summary)
        assert "funnel monotone: yes" in text
        assert "wedge" in text


class TestProvenance:
    def test_block_has_reproducibility_fields(self):
        block = provenance_block({"benchmark": "unit"})
        for key in ("platform", "python", "numpy", "repro_scale", "timestamp_utc"):
            assert block[key]
        assert block["benchmark"] == "unit"
        json.dumps(block)  # must be JSON-ready


class TestObservationIsPure:
    """Instrumentation must never perturb steps, answers, or tier stats."""

    def _observed(self, fn, *args, **kwargs):
        tracer = Tracer()
        registry = MetricsRegistry()
        sink = io.StringIO()
        with QueryLogger(sink) as log:
            result = fn(
                *args, tracer=tracer, metrics=registry, query_log=log, query_id=0, **kwargs
            )
        return result, tracer

    @pytest.mark.parametrize("fn", [early_abandon_search, wedge_search])
    def test_step_counts_bit_identical_with_tracing(self, walks, fn):
        measure = DTWMeasure(radius=2)
        database = list(walks[1:])
        bare = fn(database, walks[0], measure)
        observed, _tracer = self._observed(fn, database, walks[0], measure)
        assert observed.counter.snapshot() == bare.counter.snapshot()
        assert (observed.index, observed.rotation) == (bare.index, bare.rotation)
        assert observed.distance == bare.distance
        assert observed.tier_stats == bare.tier_stats

    def test_indexed_scan_steps_identical_with_tracing(self, walks):
        measure = EuclideanMeasure()
        scan = SignatureFilteredScan(list(walks[1:]), n_coefficients=8)
        bare = scan.query(walks[0], measure)
        traced = scan.query(walks[0], measure, tracer=Tracer())
        assert traced.result.counter.snapshot() == bare.result.counter.snapshot()
        assert (traced.result.index, traced.result.distance) == (
            bare.result.index,
            bare.result.distance,
        )
        assert traced.objects_retrieved == bare.objects_retrieved

    def test_wedge_span_tree_covers_the_query_lifecycle(self, walks):
        measure = DTWMeasure(radius=2)
        _result, tracer = self._observed(wedge_search, list(walks[1:]), walks[0], measure)
        (root,) = tracer.find("query")
        assert root.attributes["strategy"] == "wedge"
        assert root.attributes["measure"] == "dtw"
        assert tracer.find("wedge_tree.build")
        assert tracer.find("hmerge.pop")
        cascade = [s for s in tracer.iter_spans() if s.name.startswith("cascade.")]
        assert cascade
        # Final refinement: batched leaf runs land in batch.min_distance
        # kernels; the per-leaf path uses cascade.full_distance spans.
        assert tracer.find("batch.min_distance") or tracer.find("cascade.full_distance")

    def test_non_cascade_strategies_carry_the_zeroed_sentinel(self, walks):
        result = brute_force_search(list(walks[1:]), walks[0], EuclideanMeasure())
        assert result.tier_stats == empty_tier_stats()
        assert set(result.tier_stats) == set(TIER_STAT_KEYS)
        assert not any(result.tier_stats.values())

    def test_search_many_merges_worker_registries(self, walks):
        measure = EuclideanMeasure()
        database = list(walks[:10])
        queries = [walks[10], walks[11], walks[12]]
        sequential, parallel = MetricsRegistry(), MetricsRegistry()
        r1 = search_many(database, queries, measure, n_jobs=1, metrics=sequential)
        r2 = search_many(database, queries, measure, n_jobs=2, metrics=parallel)
        assert [r.index for r in r1] == [r.index for r in r2]
        for registry in (sequential, parallel):
            assert registry.counter("queries_total").value(
                strategy="wedge", measure="euclidean"
            ) == len(queries)
        seq_steps = sequential.histogram("query_steps").state(
            strategy="wedge", measure="euclidean"
        )
        par_steps = parallel.histogram("query_steps").state(
            strategy="wedge", measure="euclidean"
        )
        assert seq_steps == par_steps
