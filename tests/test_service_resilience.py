"""Self-healing service tests: supervision, deadlines, partials, cleanup.

Covers the PR's acceptance criteria end to end against real processes:
supervised respawn with replay, degradation after a crash loop, partial
results that stay exact over surviving shards, per-request deadlines, the
worker-timeout path, client reconnect across a server restart, orphaned
worker reaping on SIGTERM, and answer-cache lifecycle (clear/invalidate,
shard-set scoping).
"""

import hashlib
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.search import merge_neighbors
from repro.distances.euclidean import EuclideanMeasure
from repro.mining.queries import Neighbor, knn_search
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    AnswerCache,
    FaultPlan,
    RestartPolicy,
    ServiceClient,
    ShardDegradedError,
    SupervisedWorker,
    load_manifest,
    save_shards,
    start_service_thread,
)


@pytest.fixture(scope="module")
def walks():
    rng = np.random.default_rng(33)
    return np.cumsum(rng.normal(size=(21, 16)), axis=1)


@pytest.fixture(scope="module")
def shard_dir(walks, tmp_path_factory):
    directory = tmp_path_factory.mktemp("resilience-shards")
    save_shards(walks, directory, 3, n_coefficients=8)
    return directory


def _fast_policy(**overrides):
    kwargs = {
        "degrade_after": 2,
        "backoff_base": 0.001,
        "backoff_cap": 0.005,
        "jitter": 0.0,
        "seed": 1,
    }
    kwargs.update(overrides)
    return RestartPolicy(**kwargs)


def _chunk(walks, k=1):
    return {
        "op": "search",
        "requests": [{"kind": "knn", "query": [float(x) for x in walks[0]], "k": k}],
    }


class TestSupervisedWorker:
    def _supervised(self, shard_dir, spec=None, registry=None, **policy):
        manifest = load_manifest(shard_dir)
        return SupervisedWorker(
            0,
            manifest.shard_path(0),
            0,
            {"name": "euclidean"},
            policy=_fast_policy(**policy),
            registry=registry,
            fault_plan=FaultPlan.parse(spec) if spec else None,
        )

    def test_death_triggers_respawn_and_replay(self, shard_dir, walks):
        # after=1,count=1: request 2 crashes; the replay (request 1 of the
        # fresh process) is below the `after` threshold and succeeds.
        registry = MetricsRegistry()
        sup = self._supervised(shard_dir, "crash:after=1,count=1", registry=registry)
        try:
            assert sup.request(_chunk(walks), timeout=30)["ok"]
            reply = sup.request(_chunk(walks), timeout=30)
            assert reply["ok"]  # healed transparently: caller saw no error
            assert sup.restarts == 1
            assert sup.consecutive_failures == 0
            assert sup.state == "live"
            assert registry.counter("service_worker_restarts_total").total() == 1
            hist = registry.histogram("service_worker_restart_seconds")
            assert hist.state()["count"] == 1
        finally:
            sup.stop()

    def test_crash_loop_degrades_and_stops_burning_restarts(self, shard_dir, walks):
        registry = MetricsRegistry()
        sup = self._supervised(shard_dir, "crash:p=1", registry=registry)
        try:
            with pytest.raises((ShardDegradedError, Exception)):
                sup.request(_chunk(walks), timeout=30)
            with pytest.raises(ShardDegradedError):
                sup.request(_chunk(walks), timeout=30)
            assert sup.state == "degraded"
            assert sup.worker.process is None or not sup.worker.process.is_alive()
            assert registry.counter("service_worker_degraded_total").total() == 1
            restarts_when_degraded = sup.restarts
            with pytest.raises(ShardDegradedError):
                sup.request(_chunk(walks), timeout=30)
            assert sup.restarts == restarts_when_degraded
        finally:
            sup.stop()

    def test_timeout_kills_and_respawns_but_surfaces(self, shard_dir, walks):
        sup = self._supervised(shard_dir, "delay:ms=400", degrade_after=5)
        try:
            generation = sup.worker.generation
            with pytest.raises(TimeoutError):
                sup.request(_chunk(walks), timeout=0.1)
            # The timed-out pipe was desynchronized: a fresh process exists.
            assert sup.worker.generation == generation + 1
            assert sup.state == "live"
            assert sup.restarts == 1
        finally:
            sup.stop()

    def test_monitor_check_revives_silently_dead_worker(self, shard_dir, walks):
        sup = self._supervised(shard_dir)
        try:
            sup.worker.process.kill()
            sup.worker.process.join(10)
            assert sup.check() is True
            assert sup.state == "live"
            assert sup.restarts == 1
            assert sup.request(_chunk(walks), timeout=30)["ok"]
        finally:
            sup.stop()

    def test_describe_is_json_ready_health(self, shard_dir):
        sup = self._supervised(shard_dir)
        try:
            entry = sup.describe()
            assert entry["shard"] == 0
            assert entry["state"] == "live"
            assert entry["alive"] is True
            assert isinstance(entry["pid"], int)
            assert entry["restarts"] == 0
        finally:
            sup.stop()


def _partial_expected(walks, query, k):
    """Exact k-NN over shards 0 and 2 (7 objects each), global indices."""
    per_shard = []
    for lo, hi in ((0, 7), (14, 21)):
        local = knn_search(walks[lo:hi], query, EuclideanMeasure(), k=k)
        per_shard.append(
            [Neighbor(nb.index + lo, nb.distance, nb.rotation) for nb in local]
        )
    return [
        [nb.index, nb.distance, nb.rotation] for nb in merge_neighbors(per_shard, k)
    ]


class TestPartialResults:
    @pytest.fixture()
    def degraded_handle(self, shard_dir):
        handle = start_service_thread(
            shard_dir,
            EuclideanMeasure(),
            cache_size=32,
            fault_plan=FaultPlan.parse("seed=3;crash:p=1,shard=1"),
            restart_policy=_fast_policy(),
            monitor_interval=0.0,
        )
        yield handle
        handle.close()

    def test_strict_request_names_missing_shards(self, degraded_handle, walks):
        reply = degraded_handle.request(
            {"op": "knn", "query": list(walks[3]), "k": 2, "no_cache": True}
        )
        assert reply["ok"] is False
        assert reply["error"]["type"] in ("worker-died", "shard-degraded")
        assert reply["error"]["missing_shards"] == [1]

    def test_allow_partial_is_exact_over_survivors(self, degraded_handle, walks):
        query = walks[3] + 0.05
        reply = degraded_handle.request(
            {
                "op": "knn",
                "query": list(query),
                "k": 3,
                "no_cache": True,
                "allow_partial": True,
            }
        )
        assert reply["ok"], reply
        assert reply["partial"] is True
        assert reply["missing_shards"] == [1]
        assert reply["shards_answered"] == 2
        assert reply["neighbors"] == _partial_expected(walks, query, 3)

    def test_partial_answers_are_never_cached(self, degraded_handle, walks):
        query = walks[4] + 0.02
        message = {
            "op": "knn",
            "query": list(query),
            "k": 2,
            "allow_partial": True,
        }
        first = degraded_handle.request(message)
        second = degraded_handle.request(message)
        assert first["ok"] and second["ok"]
        assert first["partial"] and second["partial"]
        assert first["cached"] is False
        assert second["cached"] is False  # a full answer would have hit

    def test_health_reports_degraded_status(self, degraded_handle, walks):
        degraded_handle.request(
            {
                "op": "knn",
                "query": list(walks[0]),
                "k": 1,
                "no_cache": True,
                "allow_partial": True,
            }
        )
        health = degraded_handle.request({"op": "health"})
        assert health["ok"]
        assert health["status"] == "degraded"
        states = {entry["shard"]: entry["state"] for entry in health["shards"]}
        assert states[1] == "degraded"
        assert states[0] == "live" and states[2] == "live"
        assert health["counters"]["worker_deaths"] >= 1
        assert health["counters"]["partial_results"] >= 1

    def test_metrics_stay_answerable_with_a_dead_shard(self, degraded_handle, walks):
        degraded_handle.request(
            {"op": "knn", "query": list(walks[0]), "k": 1, "no_cache": True}
        )
        metrics = degraded_handle.request({"op": "metrics"})
        assert metrics["ok"], metrics
        assert metrics["unreachable_shards"] == [1]
        assert "service_worker_deaths_total" in metrics["prometheus"]


class TestDeadlines:
    def test_expired_deadline_is_rejected_before_dispatch(self, shard_dir, walks):
        handle = start_service_thread(shard_dir, EuclideanMeasure(), cache_size=0)
        try:
            reply = handle.request(
                {"op": "knn", "query": list(walks[0]), "k": 1, "timeout_ms": 1e-6}
            )
            assert reply["ok"] is False
            assert reply["error"]["type"] == "deadline-exceeded"
            assert handle.request({"op": "ping"})["ok"]
        finally:
            handle.close()

    def test_bad_timeout_is_a_bad_request(self, shard_dir, walks):
        handle = start_service_thread(shard_dir, EuclideanMeasure(), cache_size=0)
        try:
            reply = handle.request(
                {"op": "knn", "query": list(walks[0]), "k": 1, "timeout_ms": -5}
            )
            assert reply["ok"] is False
            assert reply["error"]["type"] == "bad-request"
        finally:
            handle.close()

    def test_slow_worker_times_out_without_wedging_the_batch(self, shard_dir, walks):
        """Satellite: the worker-timeout path, driven by a fault-injected
        slow worker instead of hoping for a slow machine."""
        handle = start_service_thread(
            shard_dir,
            EuclideanMeasure(),
            cache_size=0,
            request_timeout=0.5,
            fault_plan=FaultPlan.parse("delay:ms=800,shard=0"),
            restart_policy=_fast_policy(degrade_after=10),
            monitor_interval=0.0,
        )
        try:
            reply = handle.request(
                {"op": "knn", "query": list(walks[2]), "k": 1}, timeout=30
            )
            assert reply["ok"] is False
            assert reply["error"]["type"] in ("worker-timeout", "deadline-exceeded")
            assert reply["error"]["missing_shards"] == [0]
            # The batch is not wedged: the service keeps answering.
            assert handle.request({"op": "ping"})["ok"]
            health = handle.request({"op": "health"})
            assert health["counters"]["shard_retries"] >= 1
        finally:
            handle.close()


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestClientReconnect:
    def test_client_survives_a_server_restart(self, shard_dir, walks):
        port = _free_port()
        first = start_service_thread(shard_dir, EuclideanMeasure(), port=port)
        client = ServiceClient("127.0.0.1", port, reconnect_backoff=0.05)
        try:
            before = client.knn(walks[1], k=2, no_cache=True)
            assert before["ok"]
            first.close()
            second = start_service_thread(shard_dir, EuclideanMeasure(), port=port)
            try:
                after = client.knn(walks[1], k=2, no_cache=True)
                assert after["ok"], after
                assert after["neighbors"] == before["neighbors"]
            finally:
                second.close()
        finally:
            client.close()
            first.close()

    def test_retries_spend_and_raise_when_nobody_listens(self, shard_dir, walks):
        port = _free_port()
        handle = start_service_thread(shard_dir, EuclideanMeasure(), port=port)
        client = ServiceClient(
            "127.0.0.1", port, reconnect_attempts=2, reconnect_backoff=0.01
        )
        handle.close()
        try:
            with pytest.raises((ConnectionError, OSError)):
                client.knn(walks[0], k=1)
        finally:
            client.close()


class TestOrphanReaping:
    def test_sigterm_reaps_all_shard_workers(self, shard_dir, walks):
        """Satellite: `repro serve` killed by SIGTERM must not leak its
        worker processes (the asyncio loop swallowed the signal before)."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        env.pop("REPRO_FAULT_SPEC", None)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--shards",
                str(shard_dir),
                "--port",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            port = int(banner.split("listening on ")[1].split()[0].rsplit(":", 1)[1])
            with ServiceClient("127.0.0.1", port) as client:
                health = client.health()
                pids = [entry["pid"] for entry in health["shards"]]
            assert len(pids) == 3 and all(isinstance(pid, int) for pid in pids)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                alive = [pid for pid in pids if _pid_alive(pid)]
                if not alive:
                    break
                time.sleep(0.1)
            assert not alive, f"orphaned shard workers: {alive}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # Still a zombie? That counts as reaped for leak purposes once the
    # parent is gone (init will collect it); check the state field.
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split(")")[-1].split()[0] != "Z"
    except OSError:
        return False


class TestCacheLifecycle:
    def test_scope_separates_shard_sets(self):
        measure = EuclideanMeasure()
        query = [1.0, 2.0, 3.0]
        key_a = AnswerCache.make_key("knn", query, measure, scope="setA", k=1)
        key_b = AnswerCache.make_key("knn", query, measure, scope="setB", k=1)
        assert key_a != key_b

    def test_invalidate_evicts_only_one_scope(self):
        measure = EuclideanMeasure()
        cache = AnswerCache(8)
        key_a = AnswerCache.make_key("knn", [1.0], measure, scope="setA", k=1)
        key_b = AnswerCache.make_key("knn", [1.0], measure, scope="setB", k=1)
        cache.put(key_a, {"answer": "a"})
        cache.put(key_b, {"answer": "b"})
        assert cache.invalidate("setA") == 1
        assert cache.get(key_a) is None
        assert cache.get(key_b) == {"answer": "b"}

    def test_clear_drops_everything_but_keeps_monotone_counters(self):
        measure = EuclideanMeasure()
        cache = AnswerCache(8)
        for i in range(3):
            cache.put(
                AnswerCache.make_key("knn", [float(i)], measure, scope="s", k=1),
                {"i": i},
            )
        hits_before = cache.stats()["hits"]
        assert cache.clear() == 3
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == hits_before
        assert stats["evictions"] >= 3

    def test_manifest_checksum_identifies_the_shard_set(self, walks, tmp_path):
        manifest = save_shards(walks, tmp_path / "a", 3, n_coefficients=8)
        reloaded = load_manifest(tmp_path / "a")
        assert manifest.checksum == reloaded.checksum
        expected = hashlib.sha256(
            (tmp_path / "a" / "manifest.json").read_bytes()
        ).hexdigest()
        assert reloaded.checksum == expected
        other = save_shards(walks, tmp_path / "b", 7, n_coefficients=8)
        assert other.checksum != manifest.checksum
        # The checksum is derived from the file, never stored inside it.
        assert "checksum" not in manifest.to_dict()

    def test_rebuilt_shard_set_cannot_serve_stale_answers(self, walks, tmp_path):
        """Same directory, different sharding: the service built over the
        rebuilt set computes fresh answers because the cache key scope
        (manifest checksum) changed."""
        directory = tmp_path / "shards"
        first = save_shards(walks, directory, 3, n_coefficients=8)
        second = save_shards(walks, directory, 7, n_coefficients=8)
        assert first.checksum != second.checksum