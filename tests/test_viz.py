"""Tests for the ASCII visualisation helpers."""

import numpy as np
import pytest

from repro.core.wedge import Wedge
from repro.distances.dtw import warping_path
from repro.viz import plot_series, plot_warping_matrix, plot_wedge


class TestPlotSeries:
    def test_dimensions(self, random_walk):
        text = plot_series(random_walk(30), height=10)
        lines = text.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 30 for line in lines)

    def test_one_marker_per_column(self, random_walk):
        text = plot_series(random_walk(25), height=8)
        columns = list(zip(*text.split("\n")))
        assert all(col.count("*") == 1 for col in columns)

    def test_extremes_hit_edges(self):
        series = np.array([0.0, 1.0, 0.5])
        lines = plot_series(series, height=5).split("\n")
        assert lines[0][1] == "*"  # max on the top row
        assert lines[-1][0] == "*"  # min on the bottom row

    def test_constant_series_renders(self):
        text = plot_series(np.ones(10), height=4)
        assert text.count("*") == 10

    def test_width_downsampling(self, random_walk):
        text = plot_series(random_walk(200), height=6, width=40)
        assert all(len(line) == 40 for line in text.split("\n"))

    def test_validation(self, random_walk):
        with pytest.raises(ValueError):
            plot_series(random_walk(5), height=1)
        with pytest.raises(ValueError):
            plot_series(random_walk(5), width=1)


class TestPlotWedge:
    def test_accepts_wedge_object(self, rng):
        rows = rng.normal(size=(3, 20))
        wedge = Wedge.merge(
            Wedge.merge(Wedge.from_series(rows[0], 0), Wedge.from_series(rows[1], 1)),
            Wedge.from_series(rows[2], 2),
        )
        text = plot_wedge(wedge, height=8)
        assert ":" in text or "-" in text

    def test_candidate_overlay(self, rng):
        upper = np.ones(15)
        lower = -np.ones(15)
        candidate = np.zeros(15)
        candidate[7] = 3.0  # excursion above the envelope
        text = plot_wedge(upper, lower, candidate=candidate, height=10)
        assert "*" in text
        # The excursion sits on the top row.
        assert "*" in text.split("\n")[0]

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            plot_wedge(np.ones(5), np.zeros(6))
        with pytest.raises(ValueError):
            plot_wedge(np.ones(5), np.zeros(5), candidate=np.zeros(7))

    def test_downsamples_wide_input(self, rng):
        upper = rng.normal(size=300) + 5
        text = plot_wedge(upper, upper - 10, height=6, width=50)
        assert all(len(line) == 50 for line in text.split("\n"))


class TestPlotWarpingMatrix:
    def test_path_rendered(self, rng):
        q, c = rng.normal(size=12), rng.normal(size=12)
        _dist, path = warping_path(q, c, 3)
        text = plot_warping_matrix(path, 12, radius=3)
        lines = text.split("\n")
        assert len(lines) == 12
        assert text.count("*") >= 1
        # Endpoints: top-left and bottom-right corners are on the path.
        assert lines[0][0] == "*"
        assert lines[-1][-1] == "*"

    def test_large_matrix_shrinks(self, rng):
        q, c = rng.normal(size=80), rng.normal(size=80)
        _dist, path = warping_path(q, c, 5)
        text = plot_warping_matrix(path, 80, radius=5, max_size=30)
        assert len(text.split("\n")) == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            plot_warping_matrix([], 0)
