"""Tests for the Fourier-magnitude rotation-invariant lower bound (Section 4.2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distances.euclidean import euclidean_distance
from repro.index.fourier import (
    fourier_signature,
    rotation_invariant_ed_lower_bound,
    signature_distance,
)
from repro.timeseries.ops import circular_shift

floats = st.floats(min_value=-100, max_value=100, allow_nan=False)
pair_strategy = st.integers(2, 30).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=floats), arrays(np.float64, n, elements=floats)
    )
)


class TestSignature:
    def test_rotation_invariant(self, random_walk):
        series = random_walk(40)
        base = fourier_signature(series)
        for k in (1, 7, 20, 39):
            assert np.allclose(fourier_signature(circular_shift(series, k)), base, atol=1e-9)

    def test_truncation_prefixes(self, random_walk):
        series = random_walk(32)
        full = fourier_signature(series)
        assert np.allclose(fourier_signature(series, 8), full[:8])
        assert fourier_signature(series, 4).size == 4

    def test_full_signature_distance_is_parseval_exact_for_self(self, random_walk):
        series = random_walk(20)
        assert signature_distance(fourier_signature(series), fourier_signature(series)) == 0.0

    def test_signature_norm_equals_series_norm(self, random_walk):
        """Parseval: ||signature||_2 == ||series||_2."""
        series = random_walk(25)
        sig = fourier_signature(series)
        assert math.isclose(
            float(np.linalg.norm(sig)), float(np.linalg.norm(series)), rel_tol=1e-9
        )

    def test_rejects_bad_coefficient_count(self, random_walk):
        with pytest.raises(ValueError):
            fourier_signature(random_walk(10), 0)

    def test_rejects_more_coefficients_than_half_spectrum(self, random_walk):
        # A length-16 series has a 9-bin rfft half-spectrum; asking for more
        # used to silently return a shorter signature, surfacing later as an
        # opaque "signature length mismatch" in signature_distance.
        with pytest.raises(ValueError, match="half-spectrum"):
            fourier_signature(random_walk(16), 10)
        assert fourier_signature(random_walk(16), 9).size == 9

    def test_half_spectrum_limit_is_exact_for_odd_lengths(self, random_walk):
        assert fourier_signature(random_walk(15), 8).size == 8
        with pytest.raises(ValueError, match="half-spectrum"):
            fourier_signature(random_walk(15), 9)

    def test_signature_distance_shape_mismatch(self):
        with pytest.raises(ValueError):
            signature_distance(np.zeros(3), np.zeros(4))


class TestLowerBound:
    @given(pair_strategy)
    @settings(max_examples=100, deadline=None)
    def test_bounds_every_rotation(self, pair):
        a, b = pair
        bound = rotation_invariant_ed_lower_bound(a, b)
        for lag in range(a.size):
            assert bound <= euclidean_distance(a, circular_shift(b, lag)) + 1e-6

    @given(pair_strategy, st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_truncated_bound_is_weaker(self, pair, d):
        a, b = pair
        full = rotation_invariant_ed_lower_bound(a, b)
        truncated = rotation_invariant_ed_lower_bound(a, b, min(d, a.size // 2 + 1))
        assert truncated <= full + 1e-9

    def test_symmetric(self, rng):
        a, b = rng.normal(size=16), rng.normal(size=16)
        assert math.isclose(
            rotation_invariant_ed_lower_bound(a, b),
            rotation_invariant_ed_lower_bound(b, a),
            rel_tol=1e-12,
        )

    def test_invariant_to_rotating_either_argument(self, rng):
        a, b = rng.normal(size=18), rng.normal(size=18)
        base = rotation_invariant_ed_lower_bound(a, b)
        assert math.isclose(
            base, rotation_invariant_ed_lower_bound(circular_shift(a, 5), b), rel_tol=1e-9
        )
        assert math.isclose(
            base, rotation_invariant_ed_lower_bound(a, circular_shift(b, 11)), rel_tol=1e-9
        )

    def test_tightness_on_pure_rotations(self, random_walk):
        """For an exact rotation the bound reaches the true distance (0)."""
        series = random_walk(24)
        assert rotation_invariant_ed_lower_bound(series, circular_shift(series, 9)) < 1e-9
