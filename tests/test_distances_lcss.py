"""Tests for LCSS similarity and its distance form (Section 4.3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.counters import StepCounter
from repro.distances.lcss import LCSSMeasure, lcss_batch, lcss_similarity
from tests.conftest import naive_lcss_similarity

floats = st.floats(min_value=-10, max_value=10, allow_nan=False)
triple_strategy = st.integers(2, 20).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=floats),
        arrays(np.float64, n, elements=floats),
        st.integers(0, n),
        st.floats(min_value=0.0, max_value=5.0),
    )
)


class TestLCSSSimilarity:
    @given(triple_strategy)
    @settings(max_examples=100, deadline=None)
    def test_matches_naive(self, quad):
        q, c, delta, epsilon = quad
        got = lcss_similarity(q, c, delta, epsilon)
        want = naive_lcss_similarity(q, c, min(delta, q.size - 1), epsilon)
        assert math.isclose(got, want, abs_tol=1e-12)

    def test_identical_series_similarity_one(self, random_walk):
        series = random_walk(25)
        assert lcss_similarity(series, series, 2, 0.1) == 1.0

    def test_totally_different_similarity_zero(self):
        q = np.zeros(10)
        c = np.full(10, 100.0)
        assert lcss_similarity(q, c, 3, 0.5) == 0.0

    def test_bounded_in_unit_interval(self, rng):
        for _ in range(20):
            q, c = rng.normal(size=15), rng.normal(size=15)
            sim = lcss_similarity(q, c, 2, 0.5)
            assert 0.0 <= sim <= 1.0

    def test_symmetry(self, rng):
        q, c = rng.normal(size=12), rng.normal(size=12)
        assert math.isclose(
            lcss_similarity(q, c, 3, 0.4), lcss_similarity(c, q, 3, 0.4), abs_tol=1e-12
        )

    def test_monotone_in_epsilon(self, rng):
        q, c = rng.normal(size=15), rng.normal(size=15)
        sims = [lcss_similarity(q, c, 2, eps) for eps in (0.1, 0.5, 1.0, 3.0)]
        assert sims == sorted(sims)

    def test_monotone_in_delta(self, rng):
        q, c = rng.normal(size=15), rng.normal(size=15)
        sims = [lcss_similarity(q, c, delta, 0.5) for delta in (0, 2, 5, 14)]
        assert sims == sorted(sims)

    def test_ignores_occluded_region(self):
        """LCSS should not punish a locally destroyed segment much."""
        base = np.sin(np.linspace(0, 2 * np.pi, 40))
        damaged = base.copy()
        damaged[10:15] = 50.0  # a broken tip
        sim = lcss_similarity(base, damaged, 2, 0.2)
        assert sim >= (40 - 5) / 40 - 1e-9

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            lcss_similarity([1.0], [1.0], 0, -0.1)
        with pytest.raises(ValueError):
            lcss_batch([1.0, 2.0], [[1.0, 2.0]], -1, 0.5)


class TestLCSSBatch:
    def test_batch_matches_individual(self, rng):
        q = rng.normal(size=14)
        rows = rng.normal(size=(6, 14))
        sims, _steps, abandoned = lcss_batch(q, rows, 2, 0.6)
        assert not abandoned.any()
        for row, got in zip(rows, sims):
            assert math.isclose(got, naive_lcss_similarity(q, row, 2, 0.6), abs_tol=1e-12)

    def test_min_similarity_abandons_hopeless(self, rng):
        q = rng.normal(size=20)
        near = q.copy()
        far = q + 100.0
        sims, _steps, abandoned = lcss_batch(
            q, np.vstack([near, far]), 2, 0.3, min_similarity=0.9
        )
        assert sims[0] == 1.0
        assert abandoned[1]
        assert math.isinf(sims[1])


class TestLCSSMeasure:
    def test_distance_is_one_minus_similarity(self, rng):
        measure = LCSSMeasure(delta=2, epsilon=0.5)
        q, c = rng.normal(size=16), rng.normal(size=16)
        dist = measure.distance(q, c)
        sim = lcss_similarity(q, c, 2, 0.5)
        assert math.isclose(dist, 1.0 - sim, abs_tol=1e-12)

    def test_distance_early_abandons(self, rng):
        measure = LCSSMeasure(delta=1, epsilon=0.1)
        counter = StepCounter()
        q = rng.normal(size=30)
        dist = measure.distance(q, q + 100.0, r=0.05, counter=counter)
        assert math.isinf(dist)
        assert counter.early_abandons == 1

    def test_envelope_expansion_adds_epsilon(self, rng):
        measure = LCSSMeasure(delta=0, epsilon=0.7)
        series = rng.normal(size=10)
        u, lo = measure.expand_envelope(series, series)
        assert np.allclose(u, series + 0.7)
        assert np.allclose(lo, series - 0.7)

    def test_lower_bound_is_admissible(self, rng):
        """1 - (in-envelope fraction) must lower-bound the LCSS distance."""
        measure = LCSSMeasure(delta=2, epsilon=0.4)
        for _ in range(30):
            n = int(rng.integers(4, 25))
            q, c = rng.normal(size=n), rng.normal(size=n)
            u, lo = measure.expand_envelope(q, q)
            lb = measure.lower_bound(c, u, lo)
            true = measure.distance(q, c)
            assert lb <= true + 1e-9

    def test_lower_bound_early_abandons(self, rng):
        measure = LCSSMeasure(delta=1, epsilon=0.1)
        counter = StepCounter()
        q = rng.normal(size=40)
        u, lo = measure.expand_envelope(q, q)
        lb = measure.lower_bound(q + 100.0, u, lo, r=0.1, counter=counter)
        assert math.isinf(lb)
        assert counter.early_abandons == 1
        assert counter.steps < 40

    def test_cache_key_includes_params(self):
        assert LCSSMeasure(1, 0.5).cache_key() != LCSSMeasure(2, 0.5).cache_key()
        assert LCSSMeasure(1, 0.5).cache_key() != LCSSMeasure(1, 0.6).cache_key()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LCSSMeasure(-1, 0.5)
        with pytest.raises(ValueError):
            LCSSMeasure(1, -0.5)
