"""Admissibility fuzz tests for the tiered pruning engine.

The pruning cascade is only exact if every tier is admissible -- each
bound must never exceed the true distance to *any* sequence enclosed by
the wedge it was tested against.  These tests fuzz the full chain

    LB_Kim  <=  LB_Keogh  <=  LB_Improved  <=  exact distance

for Euclidean-into-wedge, DTW at several band radii, and LCSS, on leaf
wedges (where LB_Improved reduces to Lemire's pairwise two-pass bound)
and on fat internal wedges (the wedge generalisation), plus the
batch-vs-scalar agreement of the vectorised kernels and the
zero-false-dismissal guarantee of the batched H-Merge frontier path.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.cascade import CascadePolicy, lb_kim
from repro.core.counters import StepCounter
from repro.core.hmerge import h_merge
from repro.core.wedge import Wedge
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.distances.lcss import LCSSMeasure
from repro.kernels import ENV_VAR, available_backends


@pytest.fixture(scope="module", params=available_backends(), autouse=True)
def kernel_backend(request):
    """Rerun the admissibility fuzz under every registered kernel backend.

    Module-scoped (hypothesis forbids function-scoped fixtures inside
    ``@given`` bodies) and env-var based, because measures resolve their
    backend lazily at call time; os.environ is restored manually.
    """
    import os

    prior = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = request.param
    yield request.param
    if prior is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = prior


floats = st.floats(min_value=-20, max_value=20, allow_nan=False)

#: (candidate, three wedge members) of one random length.
bundle_strategy = st.integers(8, 24).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=floats),
        arrays(np.float64, n, elements=floats),
        arrays(np.float64, n, elements=floats),
        arrays(np.float64, n, elements=floats),
    )
)

MEASURES = [
    EuclideanMeasure(),
    DTWMeasure(radius=0),
    DTWMeasure(radius=1),
    DTWMeasure(radius=2),
    DTWMeasure(radius=4),
    LCSSMeasure(delta=2, epsilon=0.5),
]
MEASURE_IDS = ["ed", "dtw-r0", "dtw-r1", "dtw-r2", "dtw-r4", "lcss"]


def _wedge_of(rows) -> Wedge:
    wedge = Wedge.from_series(rows[0], 0)
    for i, row in enumerate(rows[1:], start=1):
        wedge = Wedge.merge(wedge, Wedge.from_series(row, i))
    return wedge


def _chain_asserts(measure, candidate, wedge, members):
    """Assert LB_Kim <= LB_Keogh <= LB_Improved <= min exact distance."""
    upper, lower = wedge.envelope_for(measure)
    keogh = measure.lower_bound(candidate, upper, lower)
    improved = measure.improved_lower_bound(
        candidate, upper, lower, wedge.upper, wedge.lower, keogh=keogh
    )
    exact = min(measure.distance(candidate, row) for row in members)
    assert keogh <= improved + 1e-9
    assert improved <= exact + 1e-9
    if measure.kim_compatible:
        kim = lb_kim(candidate, upper, lower)
        assert kim <= keogh + 1e-9


class TestAdmissibilityChain:
    @pytest.mark.parametrize("measure", MEASURES, ids=MEASURE_IDS)
    @given(bundle_strategy)
    @settings(max_examples=60, deadline=None)
    def test_on_internal_wedges(self, measure, bundle):
        candidate, *members = bundle
        wedge = _wedge_of(members)
        _chain_asserts(measure, candidate, wedge, members)

    @pytest.mark.parametrize("measure", MEASURES, ids=MEASURE_IDS)
    @given(bundle_strategy)
    @settings(max_examples=60, deadline=None)
    def test_on_leaf_wedges(self, measure, bundle):
        candidate, series, _, _ = bundle
        leaf = Wedge.from_series(series, 0)
        _chain_asserts(measure, candidate, leaf, [series])

    def test_lcss_declares_kim_incompatible(self):
        """The value-space Kim bound proves nothing in match-count space:
        a single huge value violation is one lost match (distance 1/n),
        while lb_kim would report the violation's magnitude."""
        assert not LCSSMeasure(delta=1, epsilon=0.1).kim_compatible
        candidate = np.zeros(10)
        candidate[3] = 100.0  # interior spike: defeats first/last checks...
        series = np.zeros(10)
        measure = LCSSMeasure(delta=1, epsilon=0.1)
        upper, lower = measure.expand_envelope(series, series)
        # ...but not the global-extremes check: lb_kim sees the spike.
        assert lb_kim(candidate, upper, lower) > measure.distance(candidate, series)

    def test_euclidean_has_no_second_pass(self):
        """Identity expansion -> the projection envelope equals the wedge
        arms -> second-pass violations are provably zero, so Euclidean
        opts out of LB_Improved entirely."""
        assert not EuclideanMeasure().has_improved_bound

    def test_improved_strictly_tightens_somewhere(self, rng):
        """LB_Improved must actually add pruning power on DTW leaves."""
        measure = DTWMeasure(radius=3)
        tightened = 0
        for _ in range(50):
            series = np.cumsum(rng.normal(size=32))
            candidate = np.cumsum(rng.normal(size=32))
            leaf = Wedge.from_series(series, 0)
            upper, lower = leaf.envelope_for(measure)
            keogh = measure.lower_bound(candidate, upper, lower)
            improved = measure.improved_lower_bound(
                candidate, upper, lower, series, series, keogh=keogh
            )
            if improved > keogh + 1e-9:
                tightened += 1
        assert tightened > 25


class TestBatchScalarAgreement:
    @pytest.mark.parametrize("measure", MEASURES, ids=MEASURE_IDS)
    def test_batch_wedge_bounds_match_scalar(self, measure, rng):
        n, k = 20, 6
        candidate = np.cumsum(rng.normal(size=n))
        rows = np.cumsum(rng.normal(size=(k, n)), axis=1)
        envelopes = [measure.expand_envelope(row, row) for row in rows]
        uppers = np.stack([e[0] for e in envelopes])
        lowers = np.stack([e[1] for e in envelopes])
        threshold = 1e9  # finite (enables the second pass) but never abandons
        batch = measure.batch_wedge_bounds(
            candidate, uppers, lowers, rows, rows, r=threshold
        )
        for j in range(k):
            keogh = measure.lower_bound(candidate, uppers[j], lowers[j], threshold)
            scalar = measure.improved_lower_bound(
                candidate, uppers[j], lowers[j], rows[j], rows[j], threshold, keogh=keogh
            )
            if not measure.has_improved_bound:
                scalar = keogh
            assert math.isclose(batch[j], scalar, rel_tol=1e-9, abs_tol=1e-12)

    def test_batch_abandons_where_scalar_abandons(self, rng):
        measure = DTWMeasure(radius=2)
        n = 24
        candidate = np.cumsum(rng.normal(size=n))
        rows = np.cumsum(rng.normal(size=(8, n)), axis=1) + rng.choice(
            [0.0, 25.0], size=(8, 1)
        )
        envelopes = [measure.expand_envelope(row, row) for row in rows]
        uppers = np.stack([e[0] for e in envelopes])
        lowers = np.stack([e[1] for e in envelopes])
        r = 5.0
        batch = measure.batch_wedge_bounds(candidate, uppers, lowers, rows, rows, r=r)
        for j in range(8):
            scalar = measure.lower_bound(candidate, uppers[j], lowers[j], r)
            assert math.isinf(batch[j]) == math.isinf(scalar)


class TestFrontierZeroFalseDismissal:
    @pytest.mark.parametrize("measure", MEASURES, ids=MEASURE_IDS)
    @pytest.mark.parametrize("batch_leaves", [True, False], ids=["batched", "scalar"])
    def test_hmerge_frontier_matches_bruteforce(self, measure, batch_leaves, rng):
        n, m = 16, 12
        rows = np.cumsum(rng.normal(size=(m, n)), axis=1)
        leaves = [Wedge.from_series(row, i) for i, row in enumerate(rows)]
        # A frontier mixing single leaves with merged pairs exercises both
        # the leaf-run batching and the internal-wedge descent.
        frontier = [
            Wedge.merge(leaves[0], leaves[1]),
            leaves[2],
            Wedge.merge(Wedge.merge(leaves[3], leaves[4]), leaves[5]),
        ] + leaves[6:]
        candidate = np.cumsum(rng.normal(size=n))
        pruner = CascadePolicy(measure, use_kim=False, use_improved=True)
        dist, idx = h_merge(
            candidate,
            frontier,
            measure,
            counter=StepCounter(),
            pruner=pruner,
            batch_leaves=batch_leaves,
        )
        naive = [measure.distance(candidate, row) for row in rows]
        assert math.isclose(dist, min(naive), rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(naive[idx], min(naive), rel_tol=1e-9, abs_tol=1e-9)

    @pytest.mark.parametrize("use_kim", [False, True], ids=["no-kim", "kim"])
    def test_thresholded_search_never_false_dismisses(self, use_kim, rng):
        measure = DTWMeasure(radius=2)
        n, m = 16, 10
        rows = np.cumsum(rng.normal(size=(m, n)), axis=1)
        leaves = [Wedge.from_series(row, i) for i, row in enumerate(rows)]
        frontier = [Wedge.merge(leaves[2 * i], leaves[2 * i + 1]) for i in range(m // 2)]
        for _ in range(20):
            candidate = np.cumsum(rng.normal(size=n))
            naive = min(measure.distance(candidate, row) for row in rows)
            r = naive * float(rng.uniform(0.8, 1.5))
            pruner = CascadePolicy(measure, use_kim=use_kim, use_improved=True)
            dist, _idx = h_merge(candidate, frontier, measure, r=r, pruner=pruner)
            if naive < r - 1e-9:
                assert math.isclose(dist, naive, rel_tol=1e-9, abs_tol=1e-9)
            else:
                assert math.isinf(dist)


class TestEnvelopeCacheStats:
    def test_hits_and_misses_are_counted(self, rng):
        measure = DTWMeasure(radius=2)
        series = np.cumsum(rng.normal(size=20))
        wedge = Wedge.from_series(series, 0)
        counter = StepCounter()
        wedge.envelope_for(measure, counter=counter)
        assert (counter.envelope_cache_misses, counter.envelope_cache_hits) == (1, 0)
        wedge.envelope_for(measure, counter=counter)
        assert (counter.envelope_cache_misses, counter.envelope_cache_hits) == (1, 1)
        # A measure with a different cache key expands (and caches) anew.
        wedge.envelope_for(DTWMeasure(radius=4), counter=counter)
        assert (counter.envelope_cache_misses, counter.envelope_cache_hits) == (2, 1)
        # Same parameters, different instance: shared entry.
        wedge.envelope_for(DTWMeasure(radius=2), counter=counter)
        assert (counter.envelope_cache_misses, counter.envelope_cache_hits) == (2, 2)
