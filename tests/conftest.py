"""Shared fixtures and naive reference implementations.

The reference implementations here are deliberately simple O(n^2)/O(n^3)
loops -- slow but obviously correct -- against which the library's
vectorised kernels are validated.
"""

from __future__ import annotations

import math

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(20060912)  # VLDB 2006


@pytest.fixture
def random_walk(rng):
    """A z-normalised random-walk series factory."""

    def make(n: int = 32) -> np.ndarray:
        walk = rng.normal(size=n).cumsum()
        centred = walk - walk.mean()
        return centred / (centred.std() + 1e-12)

    return make


@pytest.fixture
def small_database(random_walk):
    return [random_walk(24) for _ in range(12)]


def naive_euclidean(q, c) -> float:
    return math.sqrt(sum((float(a) - float(b)) ** 2 for a, b in zip(q, c)))


def naive_dtw(q, c, radius: int) -> float:
    """Textbook banded DTW: full matrix, no vectorisation."""
    n = len(q)
    radius = min(radius, n - 1)
    cost = np.full((n, n), np.inf)
    for i in range(n):
        for j in range(max(0, i - radius), min(n - 1, i + radius) + 1):
            d = (q[i] - c[j]) ** 2
            if i == 0 and j == 0:
                cost[i, j] = d
            else:
                prev = min(
                    cost[i - 1, j] if i > 0 else np.inf,
                    cost[i, j - 1] if j > 0 else np.inf,
                    cost[i - 1, j - 1] if i > 0 and j > 0 else np.inf,
                )
                cost[i, j] = d + prev
    return math.sqrt(cost[n - 1, n - 1])


def naive_lcss_similarity(q, c, delta: int, epsilon: float) -> float:
    """Textbook LCSS DP with a time band on matches."""
    n = len(q)
    delta = min(delta, n - 1)
    table = np.zeros((n + 1, n + 1))
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            if abs(i - j) <= delta and abs(q[i - 1] - c[j - 1]) <= epsilon:
                table[i, j] = table[i - 1, j - 1] + 1
            else:
                table[i, j] = max(table[i - 1, j], table[i, j - 1])
    return table[n, n] / n


def naive_rotation_min(q, c, distance) -> tuple[float, int]:
    """Best circular shift of ``c`` against ``q`` under ``distance``."""
    n = len(c)
    best, best_j = math.inf, -1
    doubled = np.concatenate([np.asarray(c, dtype=float)] * 2)
    for j in range(n):
        d = distance(q, doubled[j : j + n])
        if d < best:
            best, best_j = d, j
    return best, best_j


def naive_envelope(rows) -> tuple[np.ndarray, np.ndarray]:
    mat = np.asarray(rows, dtype=float)
    return mat.max(axis=0), mat.min(axis=0)


def naive_lb_keogh(q, upper, lower) -> float:
    total = 0.0
    for qi, ui, li in zip(q, upper, lower):
        if qi > ui:
            total += (qi - ui) ** 2
        elif qi < li:
            total += (li - qi) ** 2
    return math.sqrt(total)
