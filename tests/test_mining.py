"""Tests for the mining layer: k-NN, range search, motifs, discords."""

import math

import numpy as np
import pytest

from repro.core.search import brute_force_search
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.mining.discords import find_discords
from repro.mining.motifs import find_motif
from repro.mining.queries import knn_search, range_search
from repro.timeseries.ops import circular_shift

MEASURES = [EuclideanMeasure(), DTWMeasure(radius=2)]


def all_pairs_nn(database, query, measure):
    """Reference: every rotation-invariant distance, sorted."""
    dists = [
        (brute_force_search([obj], query, measure).distance, i)
        for i, obj in enumerate(database)
    ]
    dists.sort()
    return dists


@pytest.fixture
def database(random_walk):
    return [random_walk(16) for _ in range(12)]


@pytest.fixture
def query(random_walk):
    return random_walk(16)


class TestKNN:
    @pytest.mark.parametrize("measure", MEASURES, ids=["ed", "dtw"])
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_bruteforce_ranking(self, database, query, measure, k):
        got = knn_search(database, query, measure, k=k)
        want = all_pairs_nn(database, query, measure)[:k]
        assert [nb.index for nb in got] == [i for _d, i in want]
        for nb, (d, _i) in zip(got, want):
            assert math.isclose(nb.distance, d, rel_tol=1e-9)

    def test_k_larger_than_database(self, database, query):
        got = knn_search(database, query, EuclideanMeasure(), k=100)
        assert len(got) == len(database)
        dists = [nb.distance for nb in got]
        assert dists == sorted(dists)

    def test_k1_matches_wedge_search(self, database, query):
        from repro.core.search import wedge_search

        measure = EuclideanMeasure()
        nn = knn_search(database, query, measure, k=1)[0]
        ws = wedge_search(database, query, measure)
        assert nn.index == ws.index
        assert math.isclose(nn.distance, ws.distance, rel_tol=1e-9)

    def test_rejects_bad_k(self, database, query):
        with pytest.raises(ValueError):
            knn_search(database, query, EuclideanMeasure(), k=0)


class TestRangeSearch:
    @pytest.mark.parametrize("measure", MEASURES, ids=["ed", "dtw"])
    def test_matches_bruteforce_filter(self, database, query, measure):
        reference = all_pairs_nn(database, query, measure)
        radius = reference[len(reference) // 2][0]  # median distance
        got = range_search(database, query, measure, radius=radius)
        want = sorted(i for d, i in reference if d <= radius + 1e-12)
        assert [nb.index for nb in got] == want

    def test_zero_radius_finds_exact_rotations(self, database, query):
        planted = list(database)
        planted[4] = circular_shift(query, 7)
        got = range_search(planted, query, EuclideanMeasure(), radius=0.0)
        assert [nb.index for nb in got] == [4]
        assert got[0].distance == 0.0

    def test_rejects_negative_radius(self, database, query):
        with pytest.raises(ValueError):
            range_search(database, query, EuclideanMeasure(), radius=-1.0)


class TestMotif:
    @pytest.mark.parametrize("measure", MEASURES, ids=["ed", "dtw"])
    def test_finds_planted_pair(self, database, random_walk, measure):
        collection = list(database)
        twin = circular_shift(collection[3], 5) + 1e-4
        collection.append(twin)
        motif = find_motif(collection, measure)
        assert {motif.first, motif.second} == {3, len(collection) - 1}
        assert motif.distance < 0.1

    def test_matches_bruteforce_closest_pair(self, database):
        measure = EuclideanMeasure()
        best = math.inf
        best_pair = None
        for i in range(len(database)):
            for j in range(i + 1, len(database)):
                d = brute_force_search([database[j]], database[i], measure).distance
                if d < best:
                    best, best_pair = d, (i, j)
        motif = find_motif(database, measure)
        assert (motif.first, motif.second) == best_pair
        assert math.isclose(motif.distance, best, rel_tol=1e-9)

    def test_rejects_tiny_collection(self, random_walk):
        with pytest.raises(ValueError):
            find_motif([random_walk(8)], EuclideanMeasure())


class TestDiscords:
    @pytest.mark.parametrize("measure", MEASURES, ids=["ed", "dtw"])
    def test_finds_planted_outlier(self, random_walk, measure):
        base = np.sin(np.linspace(0, 2 * np.pi, 24))
        rng = np.random.default_rng(5)
        collection = [
            circular_shift(base + rng.normal(0, 0.05, 24), int(rng.integers(24)))
            for _ in range(10)
        ]
        collection.append(random_walk(24) * 3)  # the oddball
        discords = find_discords(collection, measure, top=1)
        assert discords[0].index == len(collection) - 1

    def test_matches_bruteforce_nn_distances(self, database):
        measure = EuclideanMeasure()
        nn_dist = []
        for i in range(len(database)):
            rest = [database[j] for j in range(len(database)) if j != i]
            nn_dist.append(brute_force_search(rest, database[i], measure).distance)
        order = sorted(range(len(database)), key=lambda i: -nn_dist[i])
        discords = find_discords(database, measure, top=3)
        assert [d.index for d in discords] == order[:3]
        for d in discords:
            assert math.isclose(d.nn_distance, nn_dist[d.index], rel_tol=1e-9)

    def test_phase_shifted_copy_is_not_an_outlier(self, random_walk):
        """The rotation-invariant point: odd phase is not odd data."""
        rng = np.random.default_rng(9)
        base = np.sin(np.linspace(0, 2 * np.pi, 24))
        collection = [base + rng.normal(0, 0.05, 24) for _ in range(8)]
        collection.append(circular_shift(base, 12))  # re-phased, not odd
        collection.append(np.sign(base) * 2.0)  # genuinely odd
        discords = find_discords(collection, EuclideanMeasure(), top=1)
        assert discords[0].index == len(collection) - 1

    def test_rejects_bad_params(self, database, random_walk):
        with pytest.raises(ValueError):
            find_discords(database, EuclideanMeasure(), top=0)
        with pytest.raises(ValueError):
            find_discords([random_walk(8)], EuclideanMeasure())
