"""Sliding-window SLO engine: quantiles, expiry, merge, alerts."""

import pytest

from repro.obs.slo import (
    DEFAULT_LATENCY_BOUNDS,
    SlidingWindow,
    SloEngine,
    SloThresholds,
    quantile_from_buckets,
)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestQuantileFromBuckets:
    def test_empty_histogram_is_zero(self):
        counts = [0] * (len(DEFAULT_LATENCY_BOUNDS) + 1)
        assert quantile_from_buckets(DEFAULT_LATENCY_BOUNDS, counts, 0.5) == 0.0

    def test_single_bucket_interpolates(self):
        bounds = (1.0, 2.0, 4.0)
        counts = [0, 10, 0, 0]
        # All mass in (1, 2]: median interpolates to the bucket midpoint.
        assert quantile_from_buckets(bounds, counts, 0.5) == pytest.approx(1.5)
        assert quantile_from_buckets(bounds, counts, 1.0) == pytest.approx(2.0)

    def test_overflow_bucket_reports_last_bound(self):
        bounds = (1.0, 2.0)
        counts = [0, 0, 5]
        assert quantile_from_buckets(bounds, counts, 0.99) == 2.0

    def test_quantile_bounded_by_bucket_ratio(self):
        # Geometric buckets bound relative error: estimates never stray
        # past one bucket boundary from the true value.
        engine_bounds = DEFAULT_LATENCY_BOUNDS
        window = SlidingWindow(60.0, bounds=engine_bounds)
        true = [0.001 * (i + 1) for i in range(100)]  # 1ms .. 100ms
        for v in true:
            window.record(v, now=100.0)
        snap = window.snapshot(now=100.0)
        assert snap["p50_ms"] == pytest.approx(50.0, rel=0.5)
        assert snap["p99_ms"] == pytest.approx(99.0, rel=0.5)


class TestSlidingWindow:
    def test_counts_qps_errors_cache(self):
        window = SlidingWindow(10.0)
        for i in range(20):
            window.record(0.01, now=100.0, error=(i < 2), cached=(i < 5))
        snap = window.snapshot(now=100.0)
        assert snap["count"] == 20
        assert snap["qps"] == pytest.approx(2.0)
        assert snap["errors"] == 2
        assert snap["error_rate"] == pytest.approx(0.1)
        assert snap["cache_hit_ratio"] == pytest.approx(0.25)

    def test_old_slots_expire(self):
        window = SlidingWindow(10.0, slots=10)
        window.record(0.01, now=100.0)
        assert window.snapshot(now=100.0)["count"] == 1
        # 9 seconds later it is still inside the 10s window...
        assert window.snapshot(now=109.0)["count"] == 1
        # ...but 11 seconds later it has aged out.
        assert window.snapshot(now=111.0)["count"] == 0

    def test_events_accumulate_and_expire(self):
        window = SlidingWindow(10.0)
        window.record_event("restarts", 1, now=100.0)
        window.record_event("restarts", 2, now=103.0)
        assert window.snapshot(now=104.0)["events"] == {"restarts": 3}
        assert window.snapshot(now=112.0)["events"] == {"restarts": 2}
        assert window.snapshot(now=120.0)["events"] == {}

    def test_merge_folds_slots(self):
        a = SlidingWindow(10.0)
        b = SlidingWindow(10.0)
        a.record(0.01, now=100.0)
        b.record(0.02, now=100.0, error=True)
        b.record_event("deadline", 1, now=100.0)
        a.merge(b)
        snap = a.snapshot(now=100.0)
        assert snap["count"] == 2
        assert snap["errors"] == 1
        assert snap["events"] == {"deadline": 1}


class TestSloEngine:
    def test_records_into_all_windows(self):
        clock = FakeClock()
        engine = SloEngine(clock=clock)
        for _ in range(10):
            engine.record(0.005)
        snap = engine.snapshot()
        assert set(snap) == {"10s", "1m", "5m"}
        assert all(stats["count"] == 10 for stats in snap.values())
        # Short window forgets first.
        clock.advance(30.0)
        snap = engine.snapshot()
        assert snap["10s"]["count"] == 0
        assert snap["1m"]["count"] == 10
        assert snap["5m"]["count"] == 10

    def test_event_labels_flatten_into_key(self):
        engine = SloEngine(clock=FakeClock())
        engine.record_event("restarts", shard=1)
        engine.record_event("restarts", shard=1)
        engine.record_event("restarts", shard=2)
        events = engine.snapshot()["1m"]["events"]
        assert events == {"restarts/shard=1": 2, "restarts/shard=2": 1}

    def test_merge_engines(self):
        clock = FakeClock()
        a = SloEngine(clock=clock)
        b = SloEngine(clock=clock)
        a.record(0.001)
        b.record(0.002, error=True)
        a.merge(b)
        assert a.snapshot()["1m"]["count"] == 2
        assert a.snapshot()["1m"]["errors"] == 1

    def test_alerts_fire_over_threshold(self):
        clock = FakeClock()
        thresholds = SloThresholds(window="1m", p95_ms=1.0, error_rate=0.05)
        engine = SloEngine(thresholds=thresholds, clock=clock)
        assert engine.alerts() == []  # empty window never alerts
        for i in range(50):
            engine.record(0.050, error=(i < 5))  # 50ms >> 1ms p95 budget; 10% errors
        alerts = engine.alerts()
        fired = {a["slo"] for a in alerts}
        assert fired == {"p95_ms", "error_rate"}
        for alert in alerts:
            assert alert["window"] == "1m"
            assert alert["value"] > alert["threshold"]

    def test_no_thresholds_means_no_alerts(self):
        engine = SloEngine(clock=FakeClock())
        engine.record(10.0, error=True)
        assert engine.alerts() == []
