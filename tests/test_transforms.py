"""Tests for shape distortions and the invariances they probe (Figure 1)."""

import numpy as np
import pytest

from repro.core.search import brute_force_search, wedge_search
from repro.distances.euclidean import EuclideanMeasure
from repro.shapes.convert import polygon_to_series
from repro.shapes.generators import butterfly, star_polygon
from repro.shapes.transforms import (
    add_vertex_noise,
    articulate_polygon,
    mirror_polygon,
    occlude_polygon,
    random_rotation,
    scale_polygon,
    translate_polygon,
)

MEASURE = EuclideanMeasure()


def rotation_invariant_distance(a, b):
    return brute_force_search([b], a, MEASURE).distance


class TestRigidTransforms:
    def test_scale_is_absorbed_by_normalisation(self):
        poly = star_polygon(6)
        a = polygon_to_series(poly, 96)
        b = polygon_to_series(scale_polygon(poly, 4.2), 96)
        assert np.allclose(a, b, atol=1e-9)

    def test_translate_is_absorbed_by_centroid(self):
        poly = star_polygon(6)
        a = polygon_to_series(poly, 96)
        b = polygon_to_series(translate_polygon(poly, -31.0, 8.0), 96)
        assert np.allclose(a, b, atol=1e-9)

    def test_scale_rejects_non_positive(self):
        with pytest.raises(ValueError):
            scale_polygon(star_polygon(5), 0.0)


class TestMirror:
    def test_mirror_twice_is_identity_series(self):
        poly = butterfly(np.random.default_rng(0), jitter=0.0)
        twice = mirror_polygon(mirror_polygon(poly))
        a = polygon_to_series(poly, 80)
        b = polygon_to_series(twice, 80)
        assert rotation_invariant_distance(a, b) < 1e-6

    def test_mirror_matched_only_with_mirror_flag(self):
        rng = np.random.default_rng(4)
        from repro.shapes.generators import fourier_blob

        poly = fourier_blob(rng, [(1, 0.3, 0.2), (3, 0.25, 1.3), (4, 0.15, 2.0)], jitter=0.0)
        a = polygon_to_series(poly, 96)
        # Roll the mirrored polygon so its traversal starts at the image of
        # the original start vertex: the mirrored series is then the exact
        # reversal of the original (same arc-length sample positions).
        mirrored_poly = np.roll(mirror_polygon(poly), 1, axis=0)
        b = polygon_to_series(mirrored_poly, 96)
        plain = wedge_search([b], a, MEASURE)
        mirrored = wedge_search([b], a, MEASURE, mirror=True)
        assert mirrored.distance < 1e-6
        assert plain.distance > 0.1

    def test_mirror_axis_validated(self):
        with pytest.raises(ValueError):
            mirror_polygon(star_polygon(4), axis="z")


class TestNoiseOcclusionArticulation:
    def test_vertex_noise_scales_with_sigma(self, rng):
        poly = star_polygon(5)
        base = polygon_to_series(poly, 96)
        small = polygon_to_series(add_vertex_noise(poly, np.random.default_rng(1), 0.002), 96)
        large = polygon_to_series(add_vertex_noise(poly, np.random.default_rng(1), 0.05), 96)
        assert rotation_invariant_distance(base, small) < rotation_invariant_distance(base, large)

    def test_occlusion_removes_vertices(self):
        poly = star_polygon(8)  # 16 vertices
        occluded = occlude_polygon(poly, start_fraction=0.25, length_fraction=0.25)
        assert occluded.shape[0] == 12

    def test_occlusion_validation(self):
        poly = star_polygon(4)
        with pytest.raises(ValueError):
            occlude_polygon(poly, 1.5, 0.1)
        with pytest.raises(ValueError):
            occlude_polygon(poly, 0.0, 0.99)

    def test_articulation_is_local(self):
        poly = butterfly(np.random.default_rng(2), jitter=0.0)
        bent = articulate_polygon(poly, center_fraction=2 / 3, width_fraction=0.15, degrees=20)
        k = poly.shape[0]
        window = int(2 / 3 * k)
        moved = np.hypot(*(bent - poly).T)
        # Far-away vertices untouched.
        assert np.all(moved[: window - int(0.15 * k)] < 1e-12)
        # Window vertices actually move.
        assert moved[window] > 0.0

    def test_articulation_smaller_than_occlusion(self):
        """Bending a wing perturbs the series less than removing it."""
        poly = butterfly(np.random.default_rng(2), jitter=0.0)
        base = polygon_to_series(poly, 120)
        bent = articulate_polygon(poly, 2 / 3, 0.15, 20.0)
        occluded = occlude_polygon(poly, 2 / 3, 0.15)
        d_bent = rotation_invariant_distance(base, polygon_to_series(bent, 120))
        d_occl = rotation_invariant_distance(base, polygon_to_series(occluded, 120))
        assert d_bent < d_occl

    def test_random_rotation_reports_angle(self, rng):
        poly = star_polygon(5)
        rotated, degrees = random_rotation(poly, rng)
        assert 0.0 <= degrees < 360.0
        assert rotated.shape == poly.shape
