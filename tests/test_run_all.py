"""Smoke test for the benchmark driver script."""

import subprocess
import sys
from pathlib import Path

import pytest

RUN_ALL = Path(__file__).resolve().parent.parent / "benchmarks" / "run_all.py"


@pytest.mark.slow
def test_run_all_single_experiment():
    proc = subprocess.run(
        [sys.executable, str(RUN_ALL), "--only", "sanity"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout[-2000:] + proc.stderr[-500:]
    assert "test_sanity_clustering.py" in proc.stdout
    assert "COMBINED REPORT" in proc.stdout


def test_run_all_rejects_unknown_selection():
    proc = subprocess.run(
        [sys.executable, str(RUN_ALL), "--only", "nonexistent-experiment"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 2
