"""Tests for the dendrogram tree and its K-cuts (Figure 10)."""

import numpy as np
import pytest

from repro.clustering.dendrogram import Dendrogram
from repro.clustering.linkage import Merge, linkage


def simple_dendrogram():
    """Five observations mirroring the paper's Figure 9 layout."""
    dist = np.array(
        [
            # C1   C2   C3   C4   C5
            [0.0, 9.0, 8.0, 2.0, 9.5],
            [9.0, 0.0, 7.0, 9.2, 1.0],
            [8.0, 7.0, 0.0, 8.5, 7.2],
            [2.0, 9.2, 8.5, 0.0, 9.9],
            [9.5, 1.0, 7.2, 9.9, 0.0],
        ]
    )
    merges = linkage(dist, "average")
    return Dendrogram(merges, 5, labels=["C1", "C2", "C3", "C4", "C5"])


class TestConstruction:
    def test_root_holds_all_members(self):
        dendro = simple_dendrogram()
        assert dendro.root.members == (0, 1, 2, 3, 4)

    def test_single_observation(self):
        dendro = Dendrogram([], 1)
        assert dendro.root.is_leaf
        assert dendro.cut(1) == [dendro.root]

    def test_label_count_validated(self):
        with pytest.raises(ValueError):
            Dendrogram([], 1, labels=["a", "b"])

    def test_merge_count_validated(self):
        with pytest.raises(ValueError):
            Dendrogram([Merge(0, 1, 1.0, 2)], 5)

    def test_iteration_visits_all_nodes(self):
        dendro = simple_dendrogram()
        nodes = list(dendro.root)
        assert sum(node.is_leaf for node in nodes) == 5
        assert len(nodes) == 9  # 5 leaves + 4 internal


class TestCut:
    def test_cut_1_is_root(self):
        dendro = simple_dendrogram()
        assert dendro.cut(1) == [dendro.root]

    def test_cut_k_gives_k_clusters_partitioning(self):
        dendro = simple_dendrogram()
        for k in range(1, 6):
            clusters = dendro.cut(k)
            assert len(clusters) == k
            members = sorted(m for node in clusters for m in node.members)
            assert members == [0, 1, 2, 3, 4]

    def test_expected_figure9_structure(self):
        """C1 pairs with C4, C2 with C5, C3 joins {C2, C5}."""
        dendro = simple_dendrogram()
        two = dendro.cut(2)
        member_sets = sorted(tuple(node.members) for node in two)
        assert member_sets == [(0, 3), (1, 2, 4)]
        three = dendro.cut(3)
        member_sets = sorted(tuple(node.members) for node in three)
        assert member_sets == [(0, 3), (1, 4), (2,)]

    def test_cluster_assignments(self):
        dendro = simple_dendrogram()
        labels = dendro.cluster_assignments(2)
        assert labels[0] == labels[3]
        assert labels[1] == labels[4]
        assert labels[0] != labels[1]

    def test_out_of_range(self):
        dendro = simple_dendrogram()
        with pytest.raises(ValueError):
            dendro.cut(0)
        with pytest.raises(ValueError):
            dendro.cut(6)


class TestRenderAndCophenetic:
    def test_render_contains_all_labels(self):
        text = simple_dendrogram().render()
        for label in ("C1", "C2", "C3", "C4", "C5"):
            assert label in text

    def test_cophenetic_of_siblings_is_merge_height(self):
        dendro = simple_dendrogram()
        assert dendro.cophenetic_distance(1, 4) == 1.0
        assert dendro.cophenetic_distance(0, 3) == 2.0

    def test_cophenetic_symmetric_and_zero_on_diagonal(self):
        dendro = simple_dendrogram()
        assert dendro.cophenetic_distance(2, 2) == 0.0
        assert dendro.cophenetic_distance(0, 2) == dendro.cophenetic_distance(2, 0)

    def test_cophenetic_dominates_sibling_heights(self):
        """Cophenetic distance of cross-cluster pairs is the root height."""
        dendro = simple_dendrogram()
        root_height = dendro.root.height
        assert dendro.cophenetic_distance(0, 1) == root_height
