"""Tests for wedge-tree construction and frontier cuts (Figures 9-10)."""

import numpy as np
import pytest

from repro.core.counters import StepCounter
from repro.core.rotation import RotationSet
from repro.core.wedge_builder import build_wedge_tree


@pytest.fixture
def rotation_set(random_walk):
    return RotationSet.full(random_walk(24))


class TestBuildWedgeTree:
    @pytest.mark.parametrize("method", ["average", "single", "complete", "contiguous"])
    def test_root_encloses_every_rotation(self, rotation_set, method):
        tree = build_wedge_tree(rotation_set, method=method)
        assert tree.max_k == len(rotation_set)
        for row in rotation_set.rotations:
            assert tree.root.encloses(row)

    @pytest.mark.parametrize("method", ["average", "contiguous"])
    def test_every_rotation_appears_in_exactly_one_leaf(self, rotation_set, method):
        tree = build_wedge_tree(rotation_set, method=method)
        leaves = [w for w in tree.iter_nodes() if w.is_leaf]
        indices = sorted(i for leaf in leaves for i in leaf.indices)
        assert indices == list(range(len(rotation_set)))

    def test_internal_nodes_enclose_children(self, rotation_set):
        tree = build_wedge_tree(rotation_set)
        for node in tree.iter_nodes():
            for child in node.children:
                assert np.all(node.upper >= child.upper - 1e-12)
                assert np.all(node.lower <= child.lower + 1e-12)

    def test_setup_cost_charged(self, rotation_set):
        counter = StepCounter()
        build_wedge_tree(rotation_set, counter=counter)
        n = rotation_set.length
        # One envelope merge per internal node, n steps each: ~n^2 total.
        assert counter.steps == (len(rotation_set) - 1) * n

    def test_single_rotation_tree(self, random_walk):
        series = random_walk(8)
        rs = RotationSet.full(series, max_degrees=0.0)
        tree = build_wedge_tree(rs)
        assert tree.max_k == 1
        assert tree.root.is_leaf

    def test_mirror_set_builds(self, random_walk):
        rs = RotationSet.full(random_walk(12), mirror=True)
        tree = build_wedge_tree(rs)
        assert tree.max_k == 24

    def test_unknown_method_raises(self, rotation_set):
        with pytest.raises(ValueError):
            build_wedge_tree(rotation_set, method="magic")


class TestFrontier:
    def test_k1_is_root(self, rotation_set):
        tree = build_wedge_tree(rotation_set)
        frontier = tree.frontier(1)
        assert frontier == [tree.root]

    def test_kmax_is_all_leaves(self, rotation_set):
        tree = build_wedge_tree(rotation_set)
        frontier = tree.frontier(tree.max_k)
        assert len(frontier) == tree.max_k
        assert all(w.is_leaf for w in frontier)

    @pytest.mark.parametrize("k", [1, 2, 3, 7, 12, 24])
    def test_frontier_partitions_rotations(self, rotation_set, k):
        tree = build_wedge_tree(rotation_set)
        frontier = tree.frontier(k)
        assert len(frontier) == k
        indices = sorted(i for w in frontier for i in w.indices)
        assert indices == list(range(len(rotation_set)))

    def test_frontier_cuts_tallest_first(self, rotation_set):
        """Splitting K -> K+1 must split the frontier wedge of max height."""
        tree = build_wedge_tree(rotation_set)
        for k in range(1, 6):
            now = {id(w) for w in tree.frontier(k)}
            nxt = tree.frontier(k + 1)
            split = [w for w in tree.frontier(k) if id(w) not in {id(x) for x in nxt}]
            assert len(split) == 1
            internal_heights = [w.height for w in tree.frontier(k) if not w.is_leaf]
            assert split[0].height == max(internal_heights)

    def test_frontier_cached_copies_are_independent(self, rotation_set):
        tree = build_wedge_tree(rotation_set)
        a = tree.frontier(3)
        a.append(None)
        b = tree.frontier(3)
        assert None not in b

    def test_out_of_range_k_raises(self, rotation_set):
        tree = build_wedge_tree(rotation_set)
        with pytest.raises(ValueError):
            tree.frontier(0)
        with pytest.raises(ValueError):
            tree.frontier(tree.max_k + 1)


class TestContiguousTree:
    def test_balanced_depth(self, random_walk):
        rs = RotationSet.full(random_walk(32))
        tree = build_wedge_tree(rs, method="contiguous")

        def depth(w):
            return 1 if w.is_leaf else 1 + max(depth(c) for c in w.children)

        assert depth(tree.root) <= 7  # log2(32) + margin

    def test_contiguous_wedges_are_tighter_than_random_order(self, random_walk):
        """Adjacent rotations are similar, so contiguous merges are tight."""
        series = random_walk(64)
        rs = RotationSet.full(series)
        tree = build_wedge_tree(rs, method="contiguous")
        # Wedges over 2 adjacent rotations should be far thinner than the
        # overall envelope.
        pair_areas = [
            w.area()
            for w in tree.iter_nodes()
            if not w.is_leaf and w.cardinality == 2
        ]
        assert max(pair_areas) < tree.root.area() / 2
