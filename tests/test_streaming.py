"""Tests for the streaming pattern filter (Atomic-Wedgie style)."""

import math

import numpy as np
import pytest

from repro.distances.dtw import DTWMeasure, dtw_distance
from repro.distances.euclidean import EuclideanMeasure, euclidean_distance
from repro.mining.streaming import StreamMonitor


def naive_matches(stream, patterns, threshold, distance):
    """Reference: test every window against every pattern."""
    w = patterns.shape[1]
    hits = []
    for end in range(w - 1, len(stream)):
        window = stream[end - w + 1 : end + 1]
        for p, pattern in enumerate(patterns):
            d = distance(window, pattern)
            if d <= threshold:
                hits.append((end, p, d))
    return hits


@pytest.fixture
def patterns(rng):
    return np.vstack(
        [
            np.sin(np.linspace(0, 2 * np.pi, 16)),
            np.linspace(-1, 1, 16),
            np.concatenate([np.ones(8), -np.ones(8)]),
        ]
    )


class TestStreamMonitor:
    def test_no_output_before_window_fills(self, patterns):
        monitor = StreamMonitor(patterns, EuclideanMeasure(), threshold=1.0)
        for i in range(15):
            assert monitor.process(0.0) == []
        assert monitor.windows_seen == 0

    def test_matches_equal_naive_euclidean(self, patterns, rng):
        stream = rng.normal(size=120)
        # Embed two pattern occurrences with small noise.
        stream[20:36] = patterns[0] + rng.normal(0, 0.05, 16)
        stream[70:86] = patterns[2] + rng.normal(0, 0.05, 16)
        threshold = 1.0
        monitor = StreamMonitor(patterns, EuclideanMeasure(), threshold=threshold)
        got = [(m.end_position, m.pattern) for m in monitor.process_batch(stream)]
        want = [(e, p) for e, p, _ in naive_matches(stream, patterns, threshold, euclidean_distance)]
        assert got == want
        assert (35, 0) in got
        assert (85, 2) in got

    def test_distances_reported_exactly(self, patterns, rng):
        stream = rng.normal(size=60)
        stream[10:26] = patterns[1]
        monitor = StreamMonitor(patterns, EuclideanMeasure(), threshold=2.0)
        matches = monitor.process_batch(stream)
        by_key = {(m.end_position, m.pattern): m.distance for m in matches}
        for (end, p), dist in by_key.items():
            window = stream[end - 15 : end + 1]
            assert math.isclose(dist, euclidean_distance(window, patterns[p]), rel_tol=1e-9)

    def test_multiple_patterns_reported_per_window(self):
        patterns = np.vstack([np.zeros(8), np.full(8, 0.1)])
        monitor = StreamMonitor(patterns, EuclideanMeasure(), threshold=1.0)
        matches = monitor.process_batch(np.zeros(8))
        assert [m.pattern for m in matches] == [0, 1]

    def test_dtw_matching(self, patterns, rng):
        measure = DTWMeasure(radius=2)
        stream = rng.normal(size=80)
        warped = np.interp(np.linspace(0, 15, 16) ** 1.05 / 15**0.05, np.arange(16), patterns[0])
        stream[30:46] = warped
        threshold = 1.5
        monitor = StreamMonitor(patterns, measure, threshold=threshold)
        got = {(m.end_position, m.pattern) for m in monitor.process_batch(stream)}
        want = {
            (e, p)
            for e, p, _ in naive_matches(
                stream, patterns, threshold, lambda a, b: dtw_distance(a, b, 2)
            )
        }
        assert got == want

    def test_normalized_matching_absorbs_scale(self, patterns):
        monitor = StreamMonitor(patterns, EuclideanMeasure(), threshold=0.5, normalize=True)
        scaled = patterns[0] * 40.0 + 17.0  # wild offset and gain
        matches = monitor.process_batch(scaled)
        assert any(m.pattern == 0 for m in matches)

    def test_pruning_saves_steps_on_nonmatching_stream(self, patterns, rng):
        threshold = 0.5
        stream = rng.normal(size=400) * 10  # nothing remotely matches
        monitor = StreamMonitor(patterns, EuclideanMeasure(), threshold=threshold)
        monitor.process_batch(stream)
        windows = monitor.windows_seen
        exhaustive = windows * patterns.shape[0] * patterns.shape[1]
        assert monitor.counter.steps < 0.25 * exhaustive

    def test_validation(self, patterns):
        with pytest.raises(ValueError):
            StreamMonitor(patterns, EuclideanMeasure(), threshold=-1.0)
        with pytest.raises(ValueError):
            StreamMonitor(np.zeros((0, 4)), EuclideanMeasure(), threshold=1.0)
