"""Tests for the synthetic shape generators."""

import numpy as np
import pytest

from repro.shapes.convert import polygon_to_series
from repro.shapes.generators import (
    butterfly,
    fourier_blob,
    projectile_point,
    regular_polygon,
    rotate_polygon,
    skull_profile,
    star_polygon,
)


def polygon_is_closed_and_finite(poly):
    assert poly.ndim == 2 and poly.shape[1] == 2
    assert poly.shape[0] >= 3
    assert np.all(np.isfinite(poly))


class TestGeometricShapes:
    def test_regular_polygon_vertices_on_circle(self):
        poly = regular_polygon(8, radius=2.0)
        assert poly.shape == (8, 2)
        assert np.allclose(np.hypot(poly[:, 0], poly[:, 1]), 2.0)

    def test_star_alternates_radii(self):
        star = star_polygon(5, outer=1.0, inner=0.4)
        radii = np.hypot(star[:, 0], star[:, 1])
        assert np.allclose(radii[::2], 1.0)
        assert np.allclose(radii[1::2], 0.4)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            regular_polygon(2)
        with pytest.raises(ValueError):
            star_polygon(1)
        with pytest.raises(ValueError):
            star_polygon(5, outer=1.0, inner=1.5)

    def test_rotate_polygon_preserves_distances_to_center(self):
        poly = star_polygon(6)
        rotated = rotate_polygon(poly, 37.0)
        center = poly.mean(axis=0)
        r_before = np.hypot(*(poly - center).T)
        r_after = np.hypot(*(rotated - rotated.mean(axis=0)).T)
        assert np.allclose(r_before, r_after, atol=1e-9)


class TestFourierBlob:
    def test_deterministic_without_jitter(self, rng):
        h = [(2, 0.2, 0.5), (4, 0.1, 1.0)]
        a = fourier_blob(np.random.default_rng(1), h, jitter=0.0)
        b = fourier_blob(np.random.default_rng(2), h, jitter=0.0)
        assert np.allclose(a, b)

    def test_jitter_produces_variation(self):
        h = [(2, 0.2, 0.5)]
        a = fourier_blob(np.random.default_rng(1), h, jitter=0.2)
        b = fourier_blob(np.random.default_rng(2), h, jitter=0.2)
        assert not np.allclose(a, b)

    def test_radius_stays_positive(self, rng):
        for _ in range(10):
            poly = fourier_blob(rng, [(2, 0.9, 0.0), (3, 0.9, 1.0)], jitter=0.3)
            assert np.all(np.hypot(poly[:, 0], poly[:, 1]) >= 0.049)


class TestProjectilePoint:
    @pytest.mark.parametrize("style", ["stemmed", "side-notched", "lanceolate", "triangular"])
    def test_styles_produce_valid_outlines(self, rng, style):
        poly = projectile_point(rng, style)
        polygon_is_closed_and_finite(poly)
        # Bilateral symmetry about x=0 (up to jitter).
        assert abs(poly[:, 0].mean()) < 0.05

    def test_broken_tip_is_shorter(self, rng):
        whole = projectile_point(np.random.default_rng(5), "lanceolate", jitter=0.0)
        broken = projectile_point(np.random.default_rng(5), "lanceolate", jitter=0.0, broken_tip=True)
        assert broken[:, 1].max() < whole[:, 1].max()
        assert broken.shape[0] < whole.shape[0]

    def test_unknown_style_rejected(self, rng):
        with pytest.raises(ValueError):
            projectile_point(rng, "clovis-fluted-mystery")

    def test_styles_are_distinguishable(self, rng):
        """Different styles must be farther apart than same-style jitter."""
        from repro.core.search import brute_force_search
        from repro.distances.euclidean import EuclideanMeasure

        measure = EuclideanMeasure()
        a1 = polygon_to_series(projectile_point(rng, "stemmed"), 128)
        a2 = polygon_to_series(projectile_point(rng, "stemmed"), 128)
        b = polygon_to_series(projectile_point(rng, "triangular"), 128)
        within = brute_force_search([a2], a1, measure).distance
        between = brute_force_search([b], a1, measure).distance
        assert within < between


class TestSkullAndButterfly:
    def test_skull_profile_valid(self, rng):
        polygon_is_closed_and_finite(skull_profile(rng))

    def test_braincase_changes_shape(self, rng):
        small = skull_profile(np.random.default_rng(1), braincase=0.7, jitter=0.0)
        large = skull_profile(np.random.default_rng(1), braincase=1.4, jitter=0.0)
        assert not np.allclose(small, large)

    def test_butterfly_valid_and_symmetric(self):
        poly = butterfly(np.random.default_rng(3), jitter=0.0)
        polygon_is_closed_and_finite(poly)
        # Mirror symmetry about the x axis when unbent.
        series = polygon_to_series(poly, 120, normalize=False)
        assert np.allclose(series[1:], series[1:][::-1], atol=0.05)

    def test_hindwing_articulation_changes_less_than_species(self):
        """The Figure 18 premise: articulation << species difference."""
        from repro.core.search import brute_force_search
        from repro.distances.euclidean import EuclideanMeasure

        measure = EuclideanMeasure()
        a = butterfly(np.random.default_rng(1), hindwing=0.8, jitter=0.0)
        a_bent = butterfly(np.random.default_rng(1), hindwing=0.8, hindwing_angle=10.0, jitter=0.0)
        b = butterfly(np.random.default_rng(1), forewing=0.6, hindwing=1.2, jitter=0.0)
        sa = polygon_to_series(a, 128)
        articulation = brute_force_search([polygon_to_series(a_bent, 128)], sa, measure).distance
        species = brute_force_search([polygon_to_series(b, 128)], sa, measure).distance
        assert articulation < species
