"""Tests for the vantage-point tree (Table 7's metric index)."""

import math

import numpy as np
import pytest

from repro.index.vptree import VPTree


def drain(tree, query, radius):
    """Collect everything within a fixed radius."""
    return list(tree.candidates_within(query, lambda: radius))


class TestVPTreeConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VPTree(np.zeros((0, 3)))

    def test_rejects_bad_leaf_size(self, rng):
        with pytest.raises(ValueError):
            VPTree(rng.normal(size=(5, 2)), leaf_size=0)

    def test_len(self, rng):
        assert len(VPTree(rng.normal(size=(17, 4)))) == 17


class TestVPTreeSearch:
    def test_fixed_radius_matches_bruteforce(self, rng):
        points = rng.normal(size=(60, 5))
        tree = VPTree(points, leaf_size=4)
        for _ in range(10):
            query = rng.normal(size=5)
            radius = float(rng.uniform(0.5, 3.0))
            got = {idx for _d, idx in drain(tree, query, radius)}
            want = {
                i for i, p in enumerate(points) if np.linalg.norm(p - query) < radius
            }
            assert got == want

    def test_yields_in_ascending_distance_order(self, rng):
        points = rng.normal(size=(40, 3))
        tree = VPTree(points, leaf_size=4)
        dists = [d for d, _ in drain(tree, rng.normal(size=3), 10.0)]
        assert dists == sorted(dists)

    def test_reported_distances_correct(self, rng):
        points = rng.normal(size=(30, 4))
        tree = VPTree(points)
        query = rng.normal(size=4)
        for d, idx in drain(tree, query, 5.0):
            assert math.isclose(d, float(np.linalg.norm(points[idx] - query)), rel_tol=1e-9)

    def test_shrinking_radius_still_exact_for_nn(self, rng):
        """Consuming candidates while shrinking the radius finds the true NN."""
        points = rng.normal(size=(80, 4))
        tree = VPTree(points, leaf_size=4)
        query = rng.normal(size=4)
        best = math.inf
        best_idx = -1
        for d, idx in tree.candidates_within(query, lambda: best):
            if d < best:
                best, best_idx = d, idx
        true = np.linalg.norm(points - query, axis=1)
        assert best_idx == int(np.argmin(true))

    def test_prunes_compared_to_bruteforce(self, rng):
        """With a tight radius the tree must evaluate far fewer distances."""
        points = rng.normal(size=(500, 6))
        tree = VPTree(points, leaf_size=8, seed=1)
        query = points[3] + 0.001
        tree.distance_evaluations = 0
        list(tree.candidates_within(query, lambda: 0.05))
        assert tree.distance_evaluations < 400

    def test_duplicate_points_handled(self):
        points = np.ones((20, 3))
        tree = VPTree(points)
        got = drain(tree, np.ones(3), 0.5)
        assert len(got) == 20

    def test_zero_radius_yields_nothing(self, rng):
        tree = VPTree(rng.normal(size=(10, 2)))
        assert drain(tree, rng.normal(size=2), 0.0) == []
