"""The clustering sanity checks of Figures 3, 16 and 17, quantified.

The paper clusters primate skulls (Euclidean) and a diverse set of reptile
skulls (DTW) and checks that conspecific/congeneric specimens end up
together -- and that the landmark (raw-alignment) variant of Figure 3
fails to do so.  This bench reproduces both as purity scores:

* rotation-invariant distances must pair every taxon's specimens;
* raw (landmark) alignment, with rotations randomised, must do worse;
* the morphologically diverse set needs DTW to reach full purity (the
  Figure 17 rationale for paying the extra DTW cost).
"""

import numpy as np

from harness import write_result
from repro.clustering.dendrogram import Dendrogram
from repro.clustering.linkage import linkage
from repro.core.search import brute_force_search
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure, euclidean_distance
from repro.shapes.convert import polygon_to_series
from repro.shapes.generators import skull_profile
from repro.timeseries.ops import circular_shift, smooth_time_warp

N = 96

PRIMATE_TAXA = {
    "owl-monkey": (0.60, 0.04, 0.10),
    "howler": (0.95, 0.12, 0.30),
    "orangutan": (1.30, 0.28, 0.55),
    "human": (1.70, 0.08, 0.20),
}


def build_specimens(rng, taxa, warp=0.0):
    series, labels = [], []
    for name, (braincase, brow, jaw) in taxa.items():
        for _ in range(2):
            poly = skull_profile(rng, braincase=braincase, brow=brow, jaw=jaw, jitter=0.003)
            raw = polygon_to_series(poly, N)
            if warp:
                raw = smooth_time_warp(raw, rng, strength=warp, n_knots=6)
            series.append(circular_shift(raw, int(rng.integers(N))))
            labels.append(name)
    return series, labels


def pairing_purity(series, labels, metric):
    k = len(series)
    matrix = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            matrix[i, j] = matrix[j, i] = metric(series[i], series[j])
    dendro = Dendrogram(linkage(matrix, "average"), k)
    paired = 0
    total = len(set(labels))
    for node in dendro.root:
        if not node.is_leaf and all(child.is_leaf for child in node.children):
            a, b = (child.id for child in node.children)
            if labels[a] == labels[b]:
                paired += 1
    return paired, total


def run_sanity():
    rng = np.random.default_rng(16)
    ed = EuclideanMeasure()
    dtw = DTWMeasure(radius=5)

    def invariant(measure):
        return lambda a, b: brute_force_search([b], a, measure).distance

    results = {}
    # Figure 3/16: primates, landmark vs best rotation, Euclidean.
    specimens, labels = build_specimens(rng, PRIMATE_TAXA)
    results["primates / landmark ED"] = pairing_purity(specimens, labels, euclidean_distance)
    results["primates / rotation-invariant ED"] = pairing_purity(
        specimens, labels, invariant(ed)
    )
    # Figure 17: a diverse, warped group needs DTW.
    warped, warped_labels = build_specimens(rng, PRIMATE_TAXA, warp=0.9)
    results["diverse / rotation-invariant ED"] = pairing_purity(
        warped, warped_labels, invariant(ed)
    )
    results["diverse / rotation-invariant DTW"] = pairing_purity(
        warped, warped_labels, invariant(dtw)
    )
    return results


def test_sanity_clustering(benchmark):
    results = benchmark.pedantic(run_sanity, rounds=1, iterations=1)

    lines = [
        "Clustering sanity checks (Figures 3, 16, 17) -- conspecific pairs recovered",
        "=" * 76,
    ]
    for name, (paired, total) in results.items():
        lines.append(f"{name:>36}: {paired} / {total}")
    write_result("sanity_clustering", "\n".join(lines))

    landmark = results["primates / landmark ED"]
    invariant_ed = results["primates / rotation-invariant ED"]
    # Rotation invariance recovers every taxon; landmark alignment does not.
    assert invariant_ed[0] == invariant_ed[1]
    assert landmark[0] < invariant_ed[0]
    # On the warped group, DTW's purity is at least ED's (Figure 17's point).
    assert (
        results["diverse / rotation-invariant DTW"][0]
        >= results["diverse / rotation-invariant ED"][0]
    )
