"""Table 8: 1-NN leave-one-out error of Euclidean vs DTW on ten datasets.

The paper's effectiveness table.  Our datasets are synthetic
reconstructions (see DESIGN.md's substitution table), so absolute error
rates are not expected to match the published numbers -- but the
qualitative structure should hold:

* both measures classify far better than chance on every dataset;
* DTW (with its window trained on the data) is at least as accurate as
  Euclidean distance on most datasets, with the big wins on the heavily
  warped ones (the paper's OSU Leaves);
* the trained windows stay small (the paper reports R in {1, 2, 3}).
"""

from harness import write_result
from repro.classify.evaluation import evaluate_dataset
from repro.datasets.registry import TABLE_EIGHT, load_dataset

MAX_LOO_INSTANCES = 32


def run_table8():
    from harness import scale

    # CI-sized: 4 instances per class, series length 48.  REPRO_SCALE
    # grows both toward the paper's dataset sizes.
    per_class = max(3, int(4 * scale()))
    length = 48 if scale() < 2 else 64
    max_instances = int(MAX_LOO_INSTANCES * scale())
    rows = []
    for name, spec in TABLE_EIGHT.items():
        dataset = load_dataset(name, seed=8, per_class=per_class, length=length)
        row = evaluate_dataset(
            dataset,
            candidate_radii=(1, 2, 3),
            max_instances=max_instances,
            seed=8,
            paper_euclidean_error=spec.paper_ed_error,
            paper_dtw_error=spec.paper_dtw_error,
        )
        rows.append((row, spec))
    return rows


def test_table8_classification(benchmark):
    rows = benchmark.pedantic(run_table8, rounds=1, iterations=1)

    lines = [
        "Table 8 -- 1-NN leave-one-out error, Euclidean vs DTW",
        "=" * 72,
    ]
    for row, _spec in rows:
        lines.append(row.format())
    write_result("table8_classification", "\n".join(lines))

    for row, spec in rows:
        chance = 100.0 * (1.0 - 1.0 / spec.n_classes)
        # Far better than chance on every dataset.
        assert row.euclidean_error < 0.75 * chance, row.name
        assert row.dtw_error < 0.75 * chance, row.name
        # Trained window in the paper's range.
        assert row.dtw_radius in (1, 2, 3)
    # DTW at least matches ED on a clear majority of datasets (the paper's
    # qualitative outcome: DTW <= ED on 8 of 10 rows).
    wins = sum(row.dtw_error <= row.euclidean_error + 1e-9 for row, _ in rows)
    assert wins >= 6
    # The heavily warped dataset shows the biggest relative DTW gain.
    osu = next(row for row, _ in rows if row.name == "OSULeaves")
    assert osu.dtw_error <= osu.euclidean_error
