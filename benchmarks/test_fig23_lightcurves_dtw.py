"""Figure 23: star light curves under DTW.

"As in the shape dataset, our method is several orders of magnitude
faster" -- the wedge line sits below early abandoning, which itself sits
far below the banded brute force, all relative to the full-matrix brute
force.
"""

from harness import ea_strategy, run_speedup_experiment, wedge_strategy, write_result
from repro.distances.dtw import DTWMeasure, band_cell_count

RADIUS = 5


def test_fig23_lightcurves_dtw(benchmark, lightcurve_archive):
    archive = lightcurve_archive[: max(len(lightcurve_archive) // 2, 128)]
    n = archive.shape[1]

    def run():
        return run_speedup_experiment(
            f"Figure 23 -- Light Curves, DTW R={RADIUS} (fraction of brute-force steps)",
            archive,
            DTWMeasure(radius=RADIUS),
            strategies={"early-abandon": ea_strategy, "wedge": wedge_strategy},
            n_queries=2,
            seed=23,
            brute_pairwise_cost=n * n,
            extra_brute_lines={"brute-R=5": band_cell_count(n, RADIUS)},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig23_lightcurves_dtw", result.format())

    wedge = result.fractions["wedge"]
    assert wedge[-1] < result.fractions["brute-R=5"][-1]
    assert wedge[-1] <= result.fractions["early-abandon"][-1]
    assert wedge[-1] < 0.02
