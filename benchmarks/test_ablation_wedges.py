"""Ablations of the wedge search's design choices (DESIGN.md section 5).

The paper motivates several decisions qualitatively; this bench measures
each on the projectile-point archive:

* **K policy** -- the dynamic scheme vs fixed K in {1, sqrt(n), n}.  The
  paper: a single fat wedge prunes poorly, all-singletons degenerates to
  the early-abandon scan, and the sweet spot moves with the best-so-far,
  which is why K is re-tuned online.
* **Clustering linkage** used to build the tree -- group-average (the
  paper's choice) vs single, complete, and the clustering-free contiguous
  tree.
* **Traversal order** -- the paper's DFS stack vs best-first expansion.
"""

import math

import numpy as np

from harness import write_result
from repro.core.hmerge import FixedKPolicy
from repro.core.search import wedge_search
from repro.distances.euclidean import EuclideanMeasure


def run_ablation(archive, n_queries=3, seed=12):
    rng = np.random.default_rng(seed)
    measure = EuclideanMeasure()
    n = archive.shape[1]
    query_ids = rng.choice(len(archive), size=n_queries, replace=False)

    variants = {
        "dynamic-K (paper)": dict(k_policy=None),
        "fixed K=1": dict(k_policy=FixedKPolicy(1)),
        f"fixed K={int(math.sqrt(n))}": dict(k_policy=FixedKPolicy(int(math.sqrt(n)))),
        f"fixed K={n} (singletons)": dict(k_policy=FixedKPolicy(n)),
        "single linkage": dict(linkage_method="single"),
        "complete linkage": dict(linkage_method="complete"),
        "contiguous tree": dict(linkage_method="contiguous"),
        "best-first order": dict(order="best-first"),
    }
    steps = {}
    reference = {}
    for name, kwargs in variants.items():
        total = 0
        for qid in query_ids:
            db = list(np.delete(archive, qid, axis=0))
            result = wedge_search(db, archive[qid], measure, **kwargs)
            total += result.counter.steps
            if name == "dynamic-K (paper)":
                reference[int(qid)] = (result.index, result.distance)
            else:
                # Every variant is exact: same answer as the reference.
                ref_idx, ref_dist = reference[int(qid)]
                assert result.index == ref_idx
                assert math.isclose(result.distance, ref_dist, rel_tol=1e-9)
        steps[name] = total / n_queries
    return steps


def test_ablation_wedge_design(benchmark, points_archive_small):
    archive = points_archive_small[: min(len(points_archive_small), 250)]
    steps = benchmark.pedantic(lambda: run_ablation(archive), rounds=1, iterations=1)

    base = steps["dynamic-K (paper)"]
    lines = [
        "Ablation -- wedge-search design choices (average steps per query)",
        "=" * 72,
        f"{'variant':>26} {'steps':>14} {'vs dynamic-K':>14}",
    ]
    for name, value in steps.items():
        lines.append(f"{name:>26} {value:>14.0f} {value / base:>14.2f}")
    write_result("ablation_wedges", "\n".join(lines))

    # The dynamic policy must be competitive with the best fixed choice
    # (within 2x) and never catastrophically worse than any variant.
    best = min(steps.values())
    assert base <= 2.5 * best
    # A single fat wedge should not beat the hierarchy on smooth data.
    assert steps["fixed K=1"] >= 0.8 * base


def run_cascade(archive, n_queries=4, seed=13):
    """How much of the leaf-level DTW work the LB_Kim tier removes."""
    from repro.core.cascade import CascadePolicy
    from repro.core.search import RotationQuery
    from repro.distances.dtw import DTWMeasure

    rng = np.random.default_rng(seed)
    measure = DTWMeasure(radius=5)
    query_ids = rng.choice(len(archive), size=n_queries, replace=False)
    rows = {}
    for use_kim in (False, True):
        policy = CascadePolicy(measure, use_kim=use_kim)
        from repro.core.counters import StepCounter

        counter = StepCounter()
        for qid in query_ids:
            rq = RotationQuery(archive[qid])
            frontier = rq.wedge_tree().frontier(8)
            import math as _math

            best = _math.inf
            for j, obj in enumerate(archive):
                if j == qid:
                    continue
                # Evaluate every leaf through the cascade (a deliberately
                # leaf-heavy workload so the tiers' contributions show).
                for wedge in frontier:
                    for leaf_idx in wedge.indices[:: max(1, len(wedge.indices) // 4)]:
                        leaf = _leaf_for(rq, leaf_idx)
                        dist = policy.leaf_distance(obj, leaf, best if best < _math.inf else 10.0, counter)
                        if dist < best:
                            best = dist
        rows["with LB_Kim" if use_kim else "without LB_Kim"] = dict(
            policy.stats(), steps=counter.steps
        )
    return rows


def _leaf_for(rq, rotation_index):
    from repro.core.wedge import Wedge

    return Wedge.from_series(rq.rotations[rotation_index], rotation_index)


def test_cascade_tiers(benchmark, points_archive_small):
    archive = points_archive_small[: min(len(points_archive_small), 60)]
    rows = benchmark.pedantic(lambda: run_cascade(archive), rounds=1, iterations=1)

    lines = [
        "Cascade ablation -- LB_Kim in front of LB_Keogh in front of DTW",
        "=" * 68,
        f"{'variant':>16} {'kim rej.':>10} {'keogh rej.':>11} {'full DTW':>10} {'steps':>12}",
    ]
    for name, stats in rows.items():
        lines.append(
            f"{name:>16} {stats['kim_rejections']:>10} {stats['keogh_rejections']:>11} "
            f"{stats['full_computations']:>10} {stats['steps']:>12,}"
        )
    write_result("ablation_cascade", "\n".join(lines))

    with_kim = rows["with LB_Kim"]
    without = rows["without LB_Kim"]
    # The O(1) tier absorbs a solid share of the rejections ...
    assert with_kim["kim_rejections"] > 0
    # ... and never changes *what* gets rejected (LB_Kim <= LB_Keogh), so
    # the number of full DTW computations is identical.
    assert with_kim["full_computations"] == without["full_computations"]
    # Finding: against an *early-abandoning* LB_Keogh (which often dies
    # after 1-3 points anyway), the extra tier is roughly cost-neutral --
    # its classical value was against full-scan LB_Keogh implementations.
    assert with_kim["steps"] <= 1.25 * without["steps"]
