"""Figure 22: star light curves under Euclidean distance.

The astronomy application of Section 2.4: folded light curves have no
natural phase origin, so similarity search must test every circular shift.
Expected shape: the wedge approach is slightly slower on tiny archives
(set-up overhead), overtakes FFT / early abandoning somewhere around a
hundred curves, and is roughly an order of magnitude better than the FFT
approach on the full archive.
"""

from harness import (
    ea_strategy,
    fft_strategy,
    run_speedup_experiment,
    wedge_strategy,
    write_result,
)
from repro.distances.euclidean import EuclideanMeasure


def test_fig22_lightcurves_euclidean(benchmark, lightcurve_archive):
    def run():
        return run_speedup_experiment(
            "Figure 22 -- Light Curves, Euclidean (fraction of brute-force steps)",
            lightcurve_archive,
            EuclideanMeasure(),
            strategies={
                "fft": fft_strategy,
                "early-abandon": ea_strategy,
                "wedge": wedge_strategy,
            },
            n_queries=3,
            seed=22,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig22_lightcurves_euclidean", result.format())

    wedge = result.fractions["wedge"]
    assert wedge[-1] < 0.1
    assert wedge[-1] < wedge[0]
    assert wedge[-1] <= result.fractions["fft"][-1]
