"""Figure 20: projectile points under DTW (R = 5).

Paper's series: Brute force (full unconstrained warping matrix), Brute
Force R=5 (banded, no pruning), Early abandon, Wedge.  Expected shape: the
wedge-building cost "is dwarfed by a single brute force DTW-rotation-
invariant comparison, so our approach is faster even for a database of
size 3"; early abandoning alone is competitive; the wedge approach is an
order of magnitude faster than early abandoning at scale and thousands of
times faster than brute force.
"""

from harness import ea_strategy, run_speedup_experiment, wedge_strategy, write_result
from repro.distances.dtw import DTWMeasure, band_cell_count

RADIUS = 5


def test_fig20_projectile_points_dtw(benchmark, points_archive_small):
    archive = points_archive_small
    n = archive.shape[1]
    measure = DTWMeasure(radius=RADIUS)

    def run():
        return run_speedup_experiment(
            f"Figure 20 -- Projectile Points, DTW R={RADIUS} (fraction of brute-force steps)",
            archive,
            measure,
            strategies={"early-abandon": ea_strategy, "wedge": wedge_strategy},
            n_queries=3,
            seed=20,
            # Brute force = the full n x n warping matrix per comparison.
            brute_pairwise_cost=n * n,
            extra_brute_lines={"brute-R=5": band_cell_count(n, RADIUS)},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig20_points_dtw", result.format())

    wedge = result.fractions["wedge"]
    ea = result.fractions["early-abandon"]
    banded = result.fractions["brute-R=5"]
    # The banded-but-unpruned baseline sits at ~(2R+1)/n of brute force.
    assert 0.01 < banded[0] < 0.1
    # Wedge beats brute force by orders of magnitude even at the smallest m
    # ("faster even for a database of size 3").
    assert wedge[0] < 0.2
    # At full size: wedge is the best line, far below the banded baseline.
    assert wedge[-1] < banded[-1]
    assert wedge[-1] <= ea[-1]
    assert wedge[-1] < 0.01
