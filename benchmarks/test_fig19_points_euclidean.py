"""Figure 19: projectile points under Euclidean distance.

Paper's series: Brute force, FFT, Early abandon, Wedge -- fraction of
brute-force steps vs database size m.  Expected shape: the wedge approach
starts slightly *worse* than FFT/early-abandon for tiny m (it pays the
O(n^2) wedge-building start-up), breaks even by m ~ 64, and is an order of
magnitude better than FFT / early abandoning and around two orders of
magnitude better than brute force by the time the full archive is scanned.
"""

from harness import (
    ea_strategy,
    fft_strategy,
    run_speedup_experiment,
    wedge_strategy,
    write_result,
)
from repro.distances.euclidean import EuclideanMeasure


def test_fig19_projectile_points_euclidean(benchmark, points_archive):
    measure = EuclideanMeasure()

    def run():
        return run_speedup_experiment(
            "Figure 19 -- Projectile Points, Euclidean (fraction of brute-force steps)",
            points_archive,
            measure,
            strategies={
                "fft": fft_strategy,
                "early-abandon": ea_strategy,
                "wedge": wedge_strategy,
            },
            n_queries=3,
            seed=19,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig19_points_euclidean", result.format())

    wedge = result.fractions["wedge"]
    fft = result.fractions["fft"]
    ea = result.fractions["early-abandon"]
    # Paper shape 1: everything beats brute force for m beyond trivial sizes.
    assert wedge[-1] < 0.1
    assert ea[-1] < 0.5
    # Paper shape 2: the wedge line improves (relatively) as m grows ...
    assert wedge[-1] < wedge[0]
    # ... and at full size beats both exact competitors.
    assert wedge[-1] <= fft[-1]
    assert wedge[-1] <= ea[-1]
