"""Figure 24: fraction of objects retrieved from disk, D = {4, 8, 16, 32}.

Once the wedge machinery removes the CPU bottleneck, the metric that
matters is disk retrievals.  The index keeps a D-dimensional signature per
object in memory (Fourier magnitudes for ED; PAA for DTW) and fetches full
objects in ascending-lower-bound order until the bound exceeds the best
verified distance.

Expected shape, matching the paper's bars: the fraction retrieved falls
as D grows; the Euclidean filter is much tighter than the DTW filter at
equal D; the projectile-point (homogeneous) archive filters better than
the heterogeneous one.  Absolute fractions run higher than the paper's
because our CI-sized archives are far sparser than 16,000 points -- the
best-match distance that drives pruning is correspondingly larger (see
EXPERIMENTS.md).
"""

import numpy as np

from harness import write_result
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.index.linear_scan import SignatureFilteredScan

DIMENSIONALITIES = (4, 8, 16, 32)
RADIUS = 5


def sweep(archive, n_queries=4, seed=24):
    rng = np.random.default_rng(seed)
    rows = {}
    query_ids = rng.choice(len(archive), size=n_queries, replace=False)
    for d in DIMENSIONALITIES:
        fractions = {"euclidean": [], "dtw": []}
        for qid in query_ids:
            db = np.delete(archive, qid, axis=0)
            index = SignatureFilteredScan(db, n_coefficients=d)
            query = archive[qid]
            for name, measure in (
                ("euclidean", EuclideanMeasure()),
                ("dtw", DTWMeasure(radius=RADIUS)),
            ):
                answer = index.query(query, measure)
                fractions[name].append(answer.fraction_retrieved)
        rows[d] = {name: float(np.mean(vals)) for name, vals in fractions.items()}
    return rows


def format_sweep(title, rows):
    lines = [title, "=" * len(title), f"{'D':>4} {'wedge: Euclidean':>18} {'wedge: DTW':>14}"]
    for d, vals in rows.items():
        lines.append(f"{d:>4} {vals['euclidean']:>18.4f} {vals['dtw']:>14.4f}")
    return "\n".join(lines)


def test_fig24_projectile_points(benchmark, points_archive_small):
    archive = points_archive_small[: min(len(points_archive_small), 250)]

    result = benchmark.pedantic(lambda: sweep(archive, seed=241), rounds=1, iterations=1)
    write_result(
        "fig24_points_disk",
        format_sweep("Figure 24 (left) -- Projectile Points, fraction retrieved from disk", result),
    )
    ed = [result[d]["euclidean"] for d in DIMENSIONALITIES]
    dtw = [result[d]["dtw"] for d in DIMENSIONALITIES]
    # More coefficients -> tighter filter (monotone-ish; allow tiny noise).
    assert ed[-1] <= ed[0] + 1e-9
    assert dtw[-1] <= dtw[0] + 1e-9
    # Euclidean filters harder than DTW at every D (the paper's bar heights).
    for e, d_ in zip(ed, dtw):
        assert e <= d_ + 1e-9
    # The high-D Euclidean filter touches only a small fraction of the disk.
    assert ed[-1] < 0.1


def test_fig24_heterogeneous(benchmark, heterogeneous_archive):
    archive = heterogeneous_archive[: min(len(heterogeneous_archive), 200)]

    result = benchmark.pedantic(lambda: sweep(archive, seed=242), rounds=1, iterations=1)
    write_result(
        "fig24_heterogeneous_disk",
        format_sweep("Figure 24 (right) -- Heterogeneous, fraction retrieved from disk", result),
    )
    ed = [result[d]["euclidean"] for d in DIMENSIONALITIES]
    dtw = [result[d]["dtw"] for d in DIMENSIONALITIES]
    assert ed[-1] <= ed[0] + 1e-9
    for e, d_ in zip(ed, dtw):
        assert e <= d_ + 1e-9
    assert ed[-1] < 0.3
