"""Benchmark: sharded query service -- latency, throughput, exactness.

Measures the full client path (TCP frame -> coordinator micro-batch ->
shard-worker fan-out -> exact global merge -> frame back) at 1/8/64
concurrent clients, cache on/off, 1 vs 4 shards, and writes the
percentile/QPS table to ``benchmarks/results/BENCH_service.json``.

Two classes of check:

* **Exactness tripwire (always fatal, quick and full):** every service
  answer -- k-NN and range, across every shard count -- must be
  bit-identical to single-process ``knn_search`` / ``range_search`` over
  the same data: same indices, same rotations, byte-equal distances, zero
  false dismissals.  Sharding is a deployment choice, never an answer
  change.
* **Throughput floor (full mode, multi-core hosts only):** at the highest
  client count, 4 shards must reach >= ``--min-speedup`` x the QPS of 1
  shard.  Exact search does the same total work however it is
  partitioned, so shard parallelism needs cores to land on: on hosts with
  fewer than 4 CPUs the floor is reported but not enforced (the same
  honest-gating pattern as ``bench_kernels``' numba floor), and the
  artifact records ``cpu_count`` and ``speedup_floor_enforced`` so a
  dashboard can partition results by what actually produced them.

``--quick`` is the CI smoke / seventh ``run_all.py --quick`` tripwire:
shard a small dataset, start a real server, fire 20 concurrent client
queries, assert bit-identical answers and a parseable ``/metrics``
exposition, and exercise the answer cache.

``--chaos`` is the chaos-smoke CI gate: serve under a seeded
``FaultPlan`` (from ``REPRO_FAULT_SPEC`` or a default that guarantees
both a degraded shard and healed restarts), fire 50 concurrent
``allow_partial`` queries, and require every reply to be either
bit-identical to single-process search or a *well-formed partial* --
the exact merge over precisely the shards it names as present.  Zero
hangs, zero silent wrong answers, restart counters visible in /metrics.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from harness import write_json_result  # noqa: E402

from repro.core.search import merge_neighbors  # noqa: E402
from repro.distances.dtw import DTWMeasure  # noqa: E402
from repro.mining.queries import Neighbor, knn_search, range_search  # noqa: E402
from repro.obs.metrics import parse_prometheus_text  # noqa: E402
from repro.service import (  # noqa: E402
    FaultPlan,
    ServiceClient,
    save_shards,
    start_service_thread,
)
from repro.service.faults import FAULT_ENV_VAR  # noqa: E402
from repro.service.shard import shard_slices  # noqa: E402

#: Default chaos plan: shard 1 crash-loops into degradation (forcing
#: partial results), shard 2 crashes periodically but heals (forcing
#: restarts), and everything sees latency jitter.
DEFAULT_CHAOS_SPEC = "seed=7;crash:p=1,shard=1;crash:every=17,shard=2;delay:p=0.12,ms=25"


def _make_data(m: int, n: int, seed: int = 2006) -> np.ndarray:
    rng = np.random.default_rng(seed)
    walks = np.cumsum(rng.normal(size=(m, n)), axis=1)
    walks -= walks.mean(axis=1, keepdims=True)
    walks /= walks.std(axis=1, keepdims=True)
    return walks


def _query_pool(data: np.ndarray, count: int, seed: int = 7) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(data), size=count, replace=False)
    return [data[i] + 0.05 * rng.standard_normal(data.shape[1]) for i in picks]


def check_exactness(handle, data, measure, pool, k: int) -> list[str]:
    """Service answers must be bit-identical to single-process search."""
    failures: list[str] = []
    with ServiceClient(port=handle.port) as client:
        for qi, query in enumerate(pool):
            response = client.knn(query, k=k, no_cache=True)
            if not response.get("ok"):
                failures.append(f"knn query#{qi}: service error {response.get('error')}")
                continue
            expected = knn_search(data, query, measure, k=k)
            got = [tuple(nb) for nb in response["neighbors"]]
            want = [(nb.index, nb.distance, nb.rotation) for nb in expected]
            if got != want:
                failures.append(f"knn query#{qi}: {got[:3]} != single-process {want[:3]}")
            # Range at the k-th distance: every single-process hit must be
            # present (zero false dismissals) with byte-equal distances.
            radius = expected[-1].distance
            range_response = client.range_query(query, radius, no_cache=True)
            range_expected = range_search(data, query, measure, radius=radius)
            got_range = [tuple(nb) for nb in range_response["neighbors"]]
            want_range = [(nb.index, nb.distance, nb.rotation) for nb in range_expected]
            if got_range != want_range:
                failures.append(
                    f"range query#{qi}: {len(got_range)} hits != "
                    f"single-process {len(want_range)}"
                )
    return failures


def run_load(handle, pool, clients: int, requests_per_client: int, k: int) -> dict:
    """``clients`` threads, each with its own TCP connection, firing k-NN."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []
    barrier = threading.Barrier(clients + 1)

    def worker(tid: int) -> None:
        try:
            with ServiceClient(port=handle.port) as client:
                barrier.wait()
                for j in range(requests_per_client):
                    query = pool[(tid * 7 + j) % len(pool)]
                    t0 = time.perf_counter()
                    response = client.knn(query, k=k)
                    latencies[tid].append(time.perf_counter() - t0)
                    if not response.get("ok"):
                        errors.append(str(response.get("error")))
        except Exception as exc:  # noqa: BLE001 - reported as benchmark failure
            errors.append(repr(exc))
            try:
                barrier.wait(timeout=1)
            except threading.BrokenBarrierError:
                pass

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    flat = np.array([latency for per in latencies for latency in per])
    total = int(flat.size)
    return {
        "clients": clients,
        "requests": total,
        "errors": errors,
        "elapsed_s": round(elapsed, 4),
        "qps": round(total / elapsed, 2) if elapsed > 0 else float("nan"),
        "p50_ms": round(float(np.percentile(flat, 50)) * 1e3, 3) if total else None,
        "p95_ms": round(float(np.percentile(flat, 95)) * 1e3, 3) if total else None,
        "p99_ms": round(float(np.percentile(flat, 99)) * 1e3, 3) if total else None,
    }


def _fetch_json(url: str) -> dict:
    import json
    import urllib.request

    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def quick_smoke() -> int:
    """CI tripwire: shard, serve, 20 concurrent queries, exact + parseable."""
    data = _make_data(36, 32)
    measure = DTWMeasure(radius=2)
    pool = _query_pool(data, 10)
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-svc-quick-") as tmp:
        save_shards(data, tmp, 3, n_coefficients=8)
        handle = start_service_thread(tmp, measure, cache_size=64, telemetry_port=0)
        try:
            failures += check_exactness(handle, data, measure, pool, k=3)
            print(f"    exactness: {len(pool)} knn + {len(pool)} range queries bit-identical")

            # 20 concurrent clients, one query each (cache on: repeats hit).
            load = run_load(handle, pool, clients=20, requests_per_client=1, k=3)
            failures += load["errors"]
            print(
                f"    20 concurrent clients: {load['requests']} answers in "
                f"{load['elapsed_s']}s ({load['qps']} QPS, p95 {load['p95_ms']} ms)"
            )
            if load["requests"] != 20:
                failures.append(f"expected 20 answers, got {load['requests']}")

            # Sequential repeat: the second identical request must be a
            # cache hit (concurrent duplicates above are single-flighted
            # within a batch, which deliberately does not count as a hit).
            with ServiceClient(port=handle.port) as client:
                first = client.knn(pool[0], k=3)
                again = client.knn(pool[0], k=3)
                if not (first.get("ok") and again.get("ok")):
                    failures.append("cache probe queries failed")
                elif not again.get("cached"):
                    failures.append("sequential repeat was not served from the cache")
                health = client.health()
                if not health.get("ok") or health.get("status") != "ok":
                    failures.append(f"health op not ok on a healthy service: {health}")
                elif len(health["shards"]) != 3 or any(
                    entry["state"] != "live" for entry in health["shards"]
                ):
                    failures.append(f"expected 3 live shards, got {health['shards']}")
                metrics = client.metrics()
            if not metrics.get("ok"):
                failures.append(f"metrics op failed: {metrics.get('error')}")
            else:
                parsed = parse_prometheus_text(metrics["prometheus"])
                for family in (
                    "service_requests_total",
                    "service_worker_requests_total",
                    "answer_cache_hits_total",
                    "queries_total",
                ):
                    if family not in parsed["families"]:
                        failures.append(f"/metrics is missing the {family} family")
                cache = metrics.get("cache", {})
                if cache.get("hits", 0) < 1:
                    failures.append(f"expected answer-cache hits from repeats, got {cache}")
                print(
                    f"    /metrics parses ({len(parsed['families'])} families), "
                    f"cache {cache.get('hits')}h/{cache.get('misses')}m"
                )

            # The telemetry sidecar serves live state over HTTP.
            base = f"http://127.0.0.1:{handle.service.telemetry.port}"
            slo = _fetch_json(f"{base}/slo")
            if set(slo.get("windows", {})) != {"10s", "1m", "5m"}:
                failures.append(f"/slo windows malformed: {sorted(slo.get('windows', {}))}")
            elif slo["windows"]["5m"]["count"] < 20:
                failures.append(f"/slo saw {slo['windows']['5m']['count']} requests, expected >=20")
            traces = _fetch_json(f"{base}/traces/recent")
            if traces.get("traces_total", 0) < 1 or not traces.get("recent"):
                failures.append(f"/traces/recent is empty: total={traces.get('traces_total')}")
            telemetry_health = _fetch_json(f"{base}/health")
            if set(telemetry_health.get("slo", {})) != {"alerts", "windows"}:
                failures.append(f"/health lacks the slo block: {sorted(telemetry_health)}")
            print(
                f"    telemetry plane: /slo count={slo['windows']['5m']['count']}, "
                f"{traces.get('traces_total', 0)} stitched traces"
            )
        finally:
            handle.close()
    if failures:
        print("\nSERVICE SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("    service smoke OK (sharded == single-process, bit for bit)")
    return 0


def chaos_smoke(n_queries: int = 50, n_threads: int = 8) -> int:
    """CI chaos gate: seeded faults, concurrent load, zero wrong answers."""
    from repro.service.worker import RestartPolicy

    spec = os.environ.get(FAULT_ENV_VAR, "").strip() or DEFAULT_CHAOS_SPEC
    plan = FaultPlan.parse(spec)
    print(f"    fault plan: {plan.to_spec()}")
    data = _make_data(48, 32)
    measure = DTWMeasure(radius=2)
    slices = shard_slices(len(data), 3)
    pool = _query_pool(data, 10)
    k = 3

    def expected_over(survivor_slices, query):
        """Exact merge over a subset of shards, global indices."""
        per_shard = []
        for lo, hi in survivor_slices:
            local = knn_search(data[lo:hi], query, measure, k=k)
            per_shard.append(
                [Neighbor(nb.index + lo, nb.distance, nb.rotation) for nb in local]
            )
        return [
            [nb.index, nb.distance, nb.rotation] for nb in merge_neighbors(per_shard, k)
        ]

    full_expected = {qi: expected_over(slices, q) for qi, q in enumerate(pool)}
    failures: list[str] = []
    replies: list[tuple[int, dict]] = []
    replies_lock = threading.Lock()
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        save_shards(data, tmp, 3, n_coefficients=8)
        handle = start_service_thread(
            tmp,
            measure,
            cache_size=64,
            fault_plan=plan,
            restart_policy=RestartPolicy(
                degrade_after=3, backoff_base=0.01, backoff_cap=0.1, seed=plan.seed
            ),
        )
        try:

            def worker(tid: int) -> None:
                try:
                    with ServiceClient(port=handle.port) as client:
                        for j in range(tid, n_queries, n_threads):
                            qi = j % len(pool)
                            reply = client.knn(
                                pool[qi], k=k, allow_partial=True, timeout_ms=30000
                            )
                            with replies_lock:
                                replies.append((qi, reply))
                except Exception as exc:  # noqa: BLE001 - reported below
                    failures.append(f"client thread {tid}: {exc!r}")

            threads = [
                threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
            ]
            t0 = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            hung = [t for t in threads if t.is_alive()]
            elapsed = time.perf_counter() - t0
            if hung:
                failures.append(f"{len(hung)} client thread(s) hung past 120s")

            partials = fulls = 0
            for qi, reply in replies:
                if not reply.get("ok"):
                    # A structured error under chaos is acceptable only if
                    # it is well-formed (typed, shard-attributed).
                    error = reply.get("error", {})
                    if not error.get("type"):
                        failures.append(f"malformed error reply: {reply}")
                    continue
                if reply.get("partial"):
                    partials += 1
                    missing = set(reply.get("missing_shards", []))
                    if not missing:
                        failures.append(f"partial reply without missing_shards: {reply}")
                        continue
                    survivors = [
                        span for sid, span in enumerate(slices) if sid not in missing
                    ]
                    if reply["neighbors"] != expected_over(survivors, pool[qi]):
                        failures.append(
                            f"partial reply for query#{qi} is NOT the exact merge "
                            f"over its named survivors (missing={sorted(missing)})"
                        )
                else:
                    fulls += 1
                    if reply["neighbors"] != full_expected[qi]:
                        failures.append(
                            f"full reply for query#{qi} is not bit-identical "
                            "to single-process search"
                        )
            answered = partials + fulls
            print(
                f"    {len(replies)}/{n_queries} replies in {elapsed:.1f}s: "
                f"{fulls} full (bit-identical), {partials} partial (exact over "
                f"survivors), {len(replies) - answered} structured errors"
            )
            if len(replies) != n_queries:
                failures.append(f"expected {n_queries} replies, got {len(replies)}")
            if answered == 0:
                failures.append("no query was answered at all under chaos")

            with ServiceClient(port=handle.port) as client:
                health = client.health()
                metrics = client.metrics()
            if not health.get("ok"):
                failures.append(f"health op failed under chaos: {health}")
            else:
                print(
                    f"    health: status={health['status']} restarts={health['restarts']} "
                    f"counters={ {n: int(v) for n, v in health['counters'].items()} }"
                )
            if not metrics.get("ok"):
                failures.append(f"metrics op failed under chaos: {metrics}")
            else:
                parsed = parse_prometheus_text(metrics["prometheus"])
                restarts = sum(
                    value
                    for name, _labels, value in parsed["samples"]
                    if name == "service_worker_restarts_total"
                )
                if restarts < 1:
                    failures.append(
                        f"expected >=1 worker restart in /metrics, got {restarts}"
                    )
                else:
                    print(f"    /metrics parses; service_worker_restarts_total={restarts:g}")
        finally:
            handle.close()
    if failures:
        print("\nCHAOS SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("    chaos smoke OK (every reply exact-full or exact-partial, no hangs)")
    return 0


def slo_agreement(data, measure, pool, k: int, clients: int = 8, per_client: int = 6):
    """Cross-check the SLO engine against external client-side measurement.

    One load level against a fresh telemetry-enabled service; the
    ``/slo`` self-reported p50/p95/p99 must agree with the percentiles
    computed from the clients' own stopwatches over the *same* traffic.
    The 5-minute window is compared (a slow host can stretch the load
    past the 1-minute window, which would honestly forget the early
    requests), and the tolerance is loose by design -- the external
    number includes TCP framing and client scheduling the coordinator
    cannot see -- but a broken sketch (wrong bucketing, wrong window,
    dropped samples) is orders of magnitude off, which is what this
    gate catches.
    """
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-svc-slo-") as tmp:
        save_shards(data, tmp, 3, n_coefficients=8)
        handle = start_service_thread(tmp, measure, cache_size=0, telemetry_port=0)
        try:
            load = run_load(handle, pool, clients, per_client, k=k)
            failures += load["errors"]
            base = f"http://127.0.0.1:{handle.service.telemetry.port}"
            window = _fetch_json(f"{base}/slo")["windows"]["5m"]
        finally:
            handle.close()
    expected = load["requests"]
    if window["count"] != expected:
        failures.append(
            f"slo_agreement: /slo 5m window saw {window['count']} requests, "
            f"expected {expected}"
        )
    comparison = {}
    for quantile in ("p50_ms", "p95_ms", "p99_ms"):
        external = load[quantile]
        reported = window[quantile]
        tolerance = max(0.5 * external, 25.0)
        delta = abs(reported - external)
        comparison[quantile] = {
            "external_ms": external,
            "self_reported_ms": round(reported, 3),
            "delta_ms": round(delta, 3),
            "tolerance_ms": round(tolerance, 3),
        }
        if delta > tolerance:
            failures.append(
                f"slo_agreement: {quantile} self-reported {reported:.2f} ms vs "
                f"external {external:.2f} ms (delta {delta:.2f} > "
                f"tolerance {tolerance:.2f})"
            )
    result = {
        "clients": clients,
        "requests": expected,
        "window": "5m",
        "comparison": comparison,
        "agrees": not failures,
    }
    print(
        "slo agreement (self-reported vs external): "
        + "  ".join(
            f"{q} {c['self_reported_ms']}/{c['external_ms']} ms"
            for q, c in comparison.items()
        )
        + ("  OK" if result["agrees"] else "  DISAGREES")
    )
    return result, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke tripwire")
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="CI chaos gate: seeded fault injection + concurrent exactness check",
    )
    parser.add_argument(
        "--chaos-queries", type=int, default=50, help="queries for --chaos"
    )
    parser.add_argument("--objects", type=int, default=96)
    parser.add_argument("--length", type=int, default=64)
    parser.add_argument("--dtw-radius", type=int, default=3)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--pool", type=int, default=16, help="distinct hot queries")
    parser.add_argument("--clients", default="1,8,64", help="concurrent client counts")
    parser.add_argument("--shard-counts", default="1,4")
    parser.add_argument(
        "--requests-per-client",
        type=int,
        default=0,
        help="0 = auto (enough for stable percentiles per level)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="QPS floor: 4 shards vs 1 at the highest client count "
        "(enforced only on hosts with >= 4 CPUs)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        return quick_smoke()
    if args.chaos:
        return chaos_smoke(n_queries=args.chaos_queries)

    client_levels = [int(c) for c in args.clients.split(",")]
    shard_counts = [int(s) for s in args.shard_counts.split(",")]
    cpu_count = os.cpu_count() or 1
    data = _make_data(args.objects, args.length)
    measure = DTWMeasure(radius=args.dtw_radius)
    pool = _query_pool(data, args.pool)
    backend = measure.backend_name

    results: list[dict] = []
    failures: list[str] = []
    phases: dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="repro-svc-bench-") as tmp:
        for n_shards in shard_counts:
            shard_dir = Path(tmp) / f"shards-{n_shards}"
            t0 = time.perf_counter()
            save_shards(data, shard_dir, n_shards, n_coefficients=8)
            phases[f"shard_{n_shards}_build"] = time.perf_counter() - t0
            for cache_on in (False, True):
                # A roomy server deadline: at 64 clients on a small host the
                # queue alone can exceed the 120 s default, and a deadline
                # storm (timeouts kill workers) would poison the percentiles.
                handle = start_service_thread(
                    shard_dir,
                    measure,
                    cache_size=1024 if cache_on else 0,
                    request_timeout=600.0,
                )
                try:
                    if not cache_on:
                        # Exactness tripwire once per shard count.
                        t0 = time.perf_counter()
                        failures += check_exactness(handle, data, measure, pool, k=args.k)
                        phases[f"exactness_{n_shards}_shards"] = time.perf_counter() - t0
                    for clients in client_levels:
                        per_client = args.requests_per_client or max(2, 64 // clients)
                        load = run_load(handle, pool, clients, per_client, k=args.k)
                        failures += load["errors"]
                        row = {
                            "shards": n_shards,
                            "cache": cache_on,
                            **{k: v for k, v in load.items() if k != "errors"},
                        }
                        if cache_on and handle.service.cache is not None:
                            stats = handle.service.cache.stats()
                            seen = stats["hits"] + stats["misses"]
                            row["cache_hit_ratio"] = (
                                round(stats["hits"] / seen, 4) if seen else 0.0
                            )
                        results.append(row)
                        if row["requests"] == 0:
                            failures.append(
                                f"shards={n_shards} cache={cache_on} "
                                f"clients={clients}: no request completed"
                            )
                        print(
                            f"shards={n_shards} cache={'on ' if cache_on else 'off'} "
                            f"clients={clients:>2}: {row['qps']:>8} QPS  "
                            f"p50 {row['p50_ms']!s:>8} ms  p95 {row['p95_ms']!s:>8} ms  "
                            f"p99 {row['p99_ms']!s:>8} ms"
                        )
                finally:
                    handle.close()

    # Telemetry cross-check: the SLO engine's self-reported percentiles
    # must agree with external measurement on the same traffic.
    t0 = time.perf_counter()
    slo_result, slo_failures = slo_agreement(data, measure, pool, k=args.k)
    phases["slo_agreement"] = time.perf_counter() - t0
    failures += slo_failures

    # The 4-vs-1-shard QPS floor at the highest client count, cache off.
    top = max(client_levels)
    speedup = None
    lone = [r for r in results if r["shards"] == min(shard_counts) and not r["cache"]]
    wide = [r for r in results if r["shards"] == max(shard_counts) and not r["cache"]]
    lone_top = next((r for r in lone if r["clients"] == top), None)
    wide_top = next((r for r in wide if r["clients"] == top), None)
    if lone_top and wide_top and lone_top is not wide_top:
        speedup = round(wide_top["qps"] / lone_top["qps"], 3)
    floor_enforced = cpu_count >= 4 and speedup is not None
    if floor_enforced and speedup < args.min_speedup:
        failures.append(
            f"QPS floor: {max(shard_counts)} shards reached only {speedup}x the "
            f"single-shard QPS at {top} clients (floor {args.min_speedup}x)"
        )
    if speedup is not None:
        note = "enforced" if floor_enforced else f"not enforced ({cpu_count} CPU(s))"
        print(
            f"\n{max(shard_counts)}-vs-{min(shard_counts)}-shard QPS at {top} clients: "
            f"{speedup}x (floor {args.min_speedup}x, {note})"
        )

    payload = {
        "config": {
            "objects": args.objects,
            "length": args.length,
            "measure": "dtw",
            "dtw_radius": args.dtw_radius,
            "k": args.k,
            "query_pool": args.pool,
            "client_levels": client_levels,
            "shard_counts": shard_counts,
            "request_timeout_s": 600.0,
        },
        "cpu_count": cpu_count,
        "results": results,
        "exactness": {
            "knn_queries_checked": args.pool * len(shard_counts),
            "range_queries_checked": args.pool * len(shard_counts),
            "bit_identical_to_single_process": not any("query#" in f for f in failures),
        },
        "slo_agreement": slo_result,
        "speedup_at_top_clients": speedup,
        "speedup_floor": args.min_speedup,
        "speedup_floor_enforced": floor_enforced,
        "speedup_floor_note": (
            "exact search is partition-invariant in total work; shard parallelism "
            f"needs >= {max(shard_counts)} CPUs to produce wall-clock speedup, "
            f"this host has {cpu_count}"
        ),
    }
    write_json_result(
        "BENCH_service",
        payload,
        phase_timings=phases,
        provenance_extra={
            "service": {
                "kernel_backend": backend,
                "shard_counts": shard_counts,
                "cache_capacity": 1024,
            }
        },
    )

    if failures:
        print("\nBENCH_SERVICE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
