"""Query-planner benchmark: auto vs every fixed plan, machine-readable.

A Figure-20-style rotation-invariant DTW workload (projectile-point
corpus, Sakoe-Chiba band R=5) run under **every** enumerable fixed plan
-- each tier subset and legal order, batch and scalar leaves -- and under
``strategy="auto"`` with a live :class:`~repro.core.planner.Planner`
receiving per-query telemetry (tier funnels *and* measured wall clock,
which drives its probe-then-commit latency tie-break).  For each
configuration the benchmark records per-query wall clock, the paper's
``num_steps``, the number of full DTW computations, and (for auto) the
planner's decisions, plan switches, and per-tier cost estimates.

Per-query wall clock is the comparison currency: auto runs more repeats
than the fixed sweep so its probe phase amortises exactly the way a
long-lived service amortises it, and per-query means make the two
directly comparable.

Invariants, fatal on every run:

* every plan -- fixed or auto -- must return bit-identical answers
  (the exactness contract the planner is built on);
* auto's per-query full-distance count must be no worse than the worst
  fixed plan's.

The numbers land in ``benchmarks/results/BENCH_planner.json``.
``--quick`` (the CI tripwire) runs a reduced workload -- auto vs the
canonical fixed plan, bit-identity enforced -- and checks the committed
baseline parses back with provenance and records auto within 10% of the
best fixed plan's per-query wall clock (and strictly better than the
worst).  ``--write-baseline`` refreshes the committed file.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_planner.json"

#: The committed baseline must show auto within this factor of the best
#: fixed plan's per-query wall clock (the issue's acceptance bar).
AUTO_VS_BEST_LIMIT = 1.10

CONFIG = {
    "corpus": "projectile-points",
    "m": 40,
    "n": 64,
    "radius": 5,
    "seed": 17,
    "n_queries": 3,
    "fixed_repeats": 3,
    "auto_repeats": 20,
}


def _setup_path() -> None:
    src = BENCH_DIR.parent / "src"
    for path in (str(BENCH_DIR), str(src)):
        if path not in sys.path:
            sys.path.insert(0, path)


def _summarise(name, repeat_walls, steps, full, n_queries, answers, extra=None) -> dict:
    # Best-of-repeats is the headline (the timeit convention): the minimum
    # strips scheduler/allocator noise that a 3-repeat mean cannot, so the
    # auto-vs-fixed comparison measures the plans, not the machine.  For
    # auto the minimum also lands in a committed steady-state repeat, past
    # the probe phase -- the number a long-lived service converges to.
    per_query = len(repeat_walls) and n_queries // len(repeat_walls)
    run = {
        "plan": name,
        "queries": n_queries,
        "wall_clock_s": round(sum(repeat_walls), 4),
        "wall_per_query_s": round(min(repeat_walls) / per_query, 6),
        "wall_per_query_mean_s": round(sum(repeat_walls) / n_queries, 6),
        "steps": steps,
        "full_distance_computations": full,
        "full_per_query": round(full / n_queries, 2),
        "answers": answers,
    }
    if extra:
        run.update(extra)
    return run


def _run_plan(archive, query_ids, measure, plan, repeats: int) -> dict:
    """One fixed plan over the whole workload; answers keyed by query."""
    import numpy as np

    from repro.core.search import wedge_search

    repeat_walls: list[float] = []
    steps, full, n = 0, 0, 0
    answers: dict[str, list] = {}
    for _ in range(repeats):
        wall = 0.0
        for qid in query_ids:
            database = list(np.delete(archive, qid, axis=0))
            query = archive[qid]
            t0 = time.perf_counter()
            result = wedge_search(database, query, measure, plan=plan)
            wall += time.perf_counter() - t0
            steps += result.counter.steps
            full += result.tier_stats["full_computations"]
            n += 1
            answer = [result.index, round(result.distance, 9)]
            previous = answers.setdefault(str(qid), answer)
            if previous != answer:
                raise AssertionError(
                    f"{plan.name}: query {qid} answered {answer} then {previous}"
                )
        repeat_walls.append(wall)
    return _summarise(plan.name, repeat_walls, steps, full, n, answers)


def _run_auto(archive, query_ids, measure, repeats: int) -> dict:
    """The planner-routed workload: same queries, live telemetry feedback."""
    import numpy as np

    from repro.core.planner import DatasetStats, Planner
    from repro.core.search import auto_search

    planner = Planner(
        measure,
        DatasetStats(size=CONFIG["m"] - 1, length=CONFIG["n"], measure=measure.name),
    )
    repeat_walls: list[float] = []
    steps, full, n = 0, 0, 0
    answers: dict[str, list] = {}
    plans_used: dict[str, int] = {}
    for _ in range(repeats):
        wall = 0.0
        for qid in query_ids:
            database = list(np.delete(archive, qid, axis=0))
            query = archive[qid]
            t0 = time.perf_counter()
            result = auto_search(database, query, measure, planner=planner)
            wall += time.perf_counter() - t0
            steps += result.counter.steps
            full += result.tier_stats["full_computations"]
            n += 1
            plans_used[result.plan] = plans_used.get(result.plan, 0) + 1
            answer = [result.index, round(result.distance, 9)]
            previous = answers.setdefault(str(qid), answer)
            if previous != answer:
                raise AssertionError(
                    f"auto: query {qid} answered {answer} then {previous} "
                    f"(a plan switch changed an answer)"
                )
        repeat_walls.append(wall)
    return _summarise(
        "auto",
        repeat_walls,
        steps,
        full,
        n,
        answers,
        extra={
            "plans_used": plans_used,
            "plan_switches": planner.plan_switches,
            "decisions": planner.decisions,
            "tier_estimates": planner.tier_estimates(),
            "wall_clock_telemetry": planner.wall_report(),
            "observations": planner.observations,
        },
    )


def _workload():
    _setup_path()
    import numpy as np

    from repro.core.search import wedge_search
    from repro.datasets.shapes_data import projectile_point_collection
    from repro.distances.dtw import DTWMeasure

    archive = projectile_point_collection(
        np.random.default_rng(CONFIG["seed"]), CONFIG["m"], length=CONFIG["n"]
    )
    rng = np.random.default_rng(CONFIG["seed"] + 1)
    query_ids = sorted(rng.choice(CONFIG["m"], size=CONFIG["n_queries"], replace=False))
    measure = DTWMeasure(radius=CONFIG["radius"])
    # Untimed warm-up (imports, allocator, kernel dispatch).
    wedge_search(list(archive[1:8]), archive[0], measure)
    return archive, query_ids, measure


def run_benchmark() -> tuple[dict, dict]:
    """One deterministic auto-vs-every-fixed-plan comparison.

    Returns ``(report, phase_timings)`` for the artifact's provenance
    block, mirroring the other ``BENCH_*`` scripts.
    """
    phases: dict[str, float] = {}
    t0 = time.perf_counter()
    archive, query_ids, measure = _workload()

    from repro.core.planner import enumerate_plans

    phases["setup"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    fixed_runs = [
        _run_plan(archive, query_ids, measure, plan, CONFIG["fixed_repeats"])
        for plan in enumerate_plans(measure)
    ]
    phases["fixed_plans"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    auto_run = _run_auto(archive, query_ids, measure, CONFIG["auto_repeats"])
    phases["auto"] = time.perf_counter() - t0

    reference = fixed_runs[0]["answers"]
    identical = all(run["answers"] == reference for run in fixed_runs) and (
        auto_run["answers"] == reference
    )
    by_wall = sorted(fixed_runs, key=lambda run: run["wall_per_query_s"])
    report = {
        "config": CONFIG,
        "n_plans": len(fixed_runs),
        "answers_identical": identical,
        "fixed": [
            {k: v for k, v in run.items() if k != "answers"} for run in fixed_runs
        ],
        "auto": {k: v for k, v in auto_run.items() if k != "answers"},
        "best_fixed": by_wall[0]["plan"],
        "best_fixed_wall_per_query_s": by_wall[0]["wall_per_query_s"],
        "worst_fixed": by_wall[-1]["plan"],
        "worst_fixed_wall_per_query_s": by_wall[-1]["wall_per_query_s"],
        "auto_vs_best": round(
            auto_run["wall_per_query_s"] / by_wall[0]["wall_per_query_s"], 4
        ),
        "auto_vs_worst": round(
            auto_run["wall_per_query_s"] / by_wall[-1]["wall_per_query_s"], 4
        ),
    }
    return report, phases


def _invariant_failures(report: dict) -> list[str]:
    """The hard guarantees every full run must uphold (timing-noise free)."""
    failures = []
    if not report["answers_identical"]:
        failures.append("a plan changed an answer (exactness contract violated)")
    worst_full = max(run["full_per_query"] for run in report["fixed"])
    auto_full = report["auto"]["full_per_query"]
    if auto_full > worst_full:
        failures.append(
            f"auto paid more full distances per query than the worst fixed "
            f"plan ({auto_full} > {worst_full})"
        )
    return failures


def _baseline_failures() -> list[str]:
    """The committed artifact must parse and meet the acceptance bar."""
    failures = []
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}; run with --write-baseline first"]
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except json.JSONDecodeError as exc:
        return [f"baseline {BASELINE_PATH} is not valid JSON: {exc}"]
    provenance = baseline.get("provenance")
    if not isinstance(provenance, dict) or "git_sha" not in provenance:
        failures.append("baseline has no provenance block")
    if not baseline.get("answers_identical"):
        failures.append("baseline does not record answers_identical=true")
    auto_wall = baseline.get("auto", {}).get("wall_per_query_s", math.inf)
    best_wall = baseline.get("best_fixed_wall_per_query_s", 0.0)
    worst_wall = baseline.get("worst_fixed_wall_per_query_s", 0.0)
    if auto_wall > best_wall * AUTO_VS_BEST_LIMIT:
        failures.append(
            f"baseline auto per-query wall clock {auto_wall}s exceeds "
            f"{AUTO_VS_BEST_LIMIT:.0%} of best fixed {best_wall}s"
        )
    if not auto_wall < worst_wall:
        failures.append(
            f"baseline auto per-query wall clock {auto_wall}s not strictly "
            f"better than worst fixed {worst_wall}s"
        )
    if not baseline.get("auto", {}).get("decisions"):
        failures.append("baseline records no planner decisions")
    if not baseline.get("auto", {}).get("tier_estimates"):
        failures.append("baseline records no per-tier cost estimates")
    return failures


def _quick() -> int:
    """CI tripwire: auto bit-identical to a fixed plan + baseline checks."""
    archive, query_ids, measure = _workload()

    from repro.core.planner import default_plan

    fixed = _run_plan(archive, query_ids, measure, default_plan(measure), 1)
    auto = _run_auto(archive, query_ids, measure, 6)
    failures = []
    if auto["answers"] != fixed["answers"]:
        failures.append(
            f"auto answers diverged from the canonical fixed plan: "
            f"{auto['answers']} != {fixed['answers']}"
        )
    else:
        print(
            f"auto bit-identical to {fixed['plan']} over {auto['queries']} queries "
            f"({auto['plan_switches']} plan switches)"
        )
    failures.extend(_baseline_failures())
    if not failures:
        print(f"baseline {BASELINE_PATH.name}: provenance + acceptance bars OK")
    return _fail(failures)


def _print_report(report: dict) -> None:
    print(f"{report['n_plans']} fixed plans, answers identical: "
          f"{report['answers_identical']}")
    for run in sorted(report["fixed"], key=lambda r: r["wall_per_query_s"]):
        print(
            f"  {run['plan']:>34}: {run['wall_per_query_s'] * 1e3:>8.2f} ms/query "
            f"{run['full_per_query']:>7.1f} full/query"
        )
    auto = report["auto"]
    print(
        f"  {'auto':>34}: {auto['wall_per_query_s'] * 1e3:>8.2f} ms/query "
        f"{auto['full_per_query']:>7.1f} full/query "
        f"({auto['plan_switches']} switches)"
    )
    print(
        f"auto vs best fixed ({report['best_fixed']}): {report['auto_vs_best']}x; "
        f"vs worst ({report['worst_fixed']}): {report['auto_vs_worst']}x"
    )


def _fail(failures: list[str]) -> int:
    if failures:
        print("\nBENCH_planner FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI tripwire: auto bit-identity + committed-baseline checks",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh benchmarks/results/BENCH_planner.json with this run",
    )
    args = parser.parse_args(argv)

    if args.quick:
        return _quick()

    report, phase_timings = run_benchmark()
    _print_report(report)
    failures = _invariant_failures(report)

    if args.write_baseline:
        import harness

        harness.write_json_result("BENCH_planner", report, phase_timings)

    return _fail(failures)


if __name__ == "__main__":
    sys.exit(main())
