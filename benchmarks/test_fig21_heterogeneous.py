"""Figure 21: the heterogeneous dataset, Euclidean (left) and DTW (right).

The paper's point: wedge-based search keeps winning on a *mixed* archive
(all classification datasets plus projectile points, interpolated to one
length), taking "slightly longer to beat Early abandon (and FFT for
Euclidean search)" than on the homogeneous archive, but reaching two
orders of magnitude over the Euclidean competitors and an order of
magnitude over early abandoning for DTW by m ~ 8,000.
"""

from harness import (
    ea_strategy,
    fft_strategy,
    run_speedup_experiment,
    wedge_strategy,
    write_result,
)
from repro.distances.dtw import DTWMeasure, band_cell_count
from repro.distances.euclidean import EuclideanMeasure

RADIUS = 5


def test_fig21_heterogeneous_euclidean(benchmark, heterogeneous_archive):
    def run():
        return run_speedup_experiment(
            "Figure 21 (left) -- Heterogeneous, Euclidean (fraction of brute-force steps)",
            heterogeneous_archive,
            EuclideanMeasure(),
            strategies={
                "fft": fft_strategy,
                "early-abandon": ea_strategy,
                "wedge": wedge_strategy,
            },
            n_queries=3,
            seed=211,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig21_heterogeneous_euclidean", result.format())

    wedge = result.fractions["wedge"]
    assert wedge[-1] < 0.2
    assert wedge[-1] < wedge[0]
    assert wedge[-1] <= result.fractions["early-abandon"][-1] * 1.5


def test_fig21_heterogeneous_dtw(benchmark, heterogeneous_archive):
    archive = heterogeneous_archive[: max(len(heterogeneous_archive) // 2, 128)]
    n = archive.shape[1]

    def run():
        return run_speedup_experiment(
            f"Figure 21 (right) -- Heterogeneous, DTW R={RADIUS} (fraction of brute-force steps)",
            archive,
            DTWMeasure(radius=RADIUS),
            strategies={"early-abandon": ea_strategy, "wedge": wedge_strategy},
            n_queries=2,
            seed=212,
            brute_pairwise_cost=n * n,
            extra_brute_lines={"brute-R=5": band_cell_count(n, RADIUS)},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig21_heterogeneous_dtw", result.format())

    wedge = result.fractions["wedge"]
    assert wedge[-1] < result.fractions["brute-R=5"][-1]
    assert wedge[-1] < 0.02
