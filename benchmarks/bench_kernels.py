"""Kernel-backend benchmark: per-backend DTW linear scan, exactness enforced.

The kernel registry (``repro.kernels``) promises that every backend --
``scalar`` (interpreted reference), ``wavefront`` (pure-NumPy
anti-diagonal), ``numba`` (compiled, optional) -- returns *bit-identical*
distances and *identical* ``num_steps`` for the same inputs.  This
benchmark is the enforcement point: it runs the same banded-DTW linear
scan (early-abandoning ``dtw_batch`` plus LB_Keogh / LB_Improved bound
kernels) through every registered backend, asserts exact answer and step
parity against the ``scalar`` reference, and records per-backend wall
clock.  When a compiled backend is registered, the fastest one must beat
``scalar`` by at least ``--min-speedup`` (default 5x); pure-NumPy
``wavefront`` is exempt from the speedup floor but never from parity.

The numbers land in ``benchmarks/results/BENCH_kernels.json`` so the
per-backend perf trajectory is tracked across PRs.  ``--quick`` runs the
cross-backend exactness tripwire on a small corpus without timing
assertions; it is wired into ``run_all.py --quick`` as a CI gate.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"

#: Minimum speedup the fastest *compiled* backend must achieve over the
#: interpreted scalar reference on the full-size scan.  Pure-Python DP over
#: a 64k-cell workload is orders of magnitude slower than compiled code, so
#: 5x is a tripwire against accidentally registering a non-compiled
#: function as "numba", not a tight perf bound.
MIN_COMPILED_SPEEDUP = 5.0

CONFIG = {
    "corpus": "random-walk",
    "m": 48,          # database series
    "n": 128,         # series length
    "radius": 6,      # Sakoe-Chiba band
    "seed": 2006,
    "n_queries": 2,
    "repeats": 3,     # timed repetitions per backend (best-of)
}

QUICK_CONFIG = {
    "corpus": "random-walk",
    "m": 12,
    "n": 48,
    "radius": 4,
    "seed": 2006,
    "n_queries": 2,
    "repeats": 1,
}


def _setup_path() -> None:
    src = BENCH_DIR.parent / "src"
    for path in (str(BENCH_DIR), str(src)):
        if path not in sys.path:
            sys.path.insert(0, path)


def _make_corpus(config: dict):
    import numpy as np

    rng = np.random.default_rng(config["seed"])
    walks = np.cumsum(rng.standard_normal((config["m"], config["n"])), axis=1)
    walks -= walks.mean(axis=1, keepdims=True)
    walks /= walks.std(axis=1, keepdims=True)
    queries = np.cumsum(rng.standard_normal((config["n_queries"], config["n"])), axis=1)
    queries -= queries.mean(axis=1, keepdims=True)
    queries /= queries.std(axis=1, keepdims=True)
    return walks, queries


def _scan_once(backend, walks, queries, radius: int) -> dict:
    """One full linear scan through every kernel op of ``backend``.

    Returns the quantities the parity contract covers: per-query best
    distances/indices, total steps, LB_Keogh / LB_Improved bound values.
    The scan early-abandons with the running best-so-far threshold so the
    abandon logic of each backend is exercised, not just the full DP.
    """
    import numpy as np

    from repro.timeseries.ops import sliding_envelope

    answers = []
    total_steps = 0
    bound_checksums = []
    for q in queries:
        raw_upper, raw_lower = q.copy(), q.copy()
        upper, lower = sliding_envelope(raw_upper, raw_lower, radius)
        # Bound kernels over every candidate row.
        bounds, lb_steps = backend.lb_improved_batch(
            walks, upper, lower, raw_upper, raw_lower, radius, math.inf
        )
        total_steps += int(np.sum(lb_steps))
        keogh_first, keogh_steps = backend.lb_keogh(walks[0], upper, lower, math.inf)
        total_steps += int(keogh_steps)
        pass2 = backend.lb_improved_pass2(walks[0], upper, lower, raw_upper, raw_lower, radius)
        bound_checksums.append((float(np.sum(bounds)), float(keogh_first), float(pass2)))
        # Early-abandoning scan: chunked dtw_batch driven by best-so-far,
        # with a dtw_single refinement of the winner.
        best, best_idx = math.inf, -1
        order = np.argsort(bounds, kind="stable")
        for start in range(0, len(order), 8):
            chunk_ids = order[start : start + 8]
            dists, steps, _abandoned = backend.dtw_batch(q, walks[chunk_ids], radius, best)
            total_steps += int(steps)
            for j, d in zip(chunk_ids, dists):
                if d < best:
                    best, best_idx = float(d), int(j)
        single_d, single_steps, abandoned = backend.dtw_single(q, walks[best_idx], radius, math.inf)
        total_steps += int(single_steps)
        answers.append((best_idx, best, float(single_d), bool(abandoned)))
    # LCSS parity ride-along (small: the DP has no threshold pruning).
    sims, lcss_steps, _ = backend.lcss_batch(queries[0], walks, radius, 0.5, 0.0)
    total_steps += int(lcss_steps)
    return {
        "answers": answers,
        "steps": total_steps,
        "bounds": bound_checksums,
        "lcss": [float(s) for s in sims],
    }


def _parity_failures(reference: dict, candidate: dict, name: str) -> list[str]:
    failures = []
    if candidate["answers"] != reference["answers"]:
        failures.append(f"{name}: answers differ from scalar reference")
    if candidate["steps"] != reference["steps"]:
        failures.append(
            f"{name}: step count {candidate['steps']} != scalar reference {reference['steps']}"
        )
    if candidate["bounds"] != reference["bounds"]:
        failures.append(f"{name}: LB_Keogh/LB_Improved bound values differ from scalar reference")
    if candidate["lcss"] != reference["lcss"]:
        failures.append(f"{name}: LCSS similarities differ from scalar reference")
    return failures


def run_benchmark(config: dict, min_speedup: float) -> tuple[dict, dict]:
    from repro.kernels import NUMBA_IMPORT_ERROR, available_backends, get_backend

    phases: dict[str, float] = {}
    t0 = time.perf_counter()
    walks, queries = _make_corpus(config)
    phases["setup"] = time.perf_counter() - t0

    backends = {}
    reference = None
    failures: list[str] = []
    for name in sorted(available_backends()):
        backend = get_backend(name)
        warmup = getattr(backend, "warmup", None)
        if warmup is not None:  # JIT compile outside the timed region
            warmup()
        _scan_once(backend, walks, queries, config["radius"])  # untimed warm-up
        best_wall = math.inf
        outcome = None
        t0 = time.perf_counter()
        for _ in range(config["repeats"]):
            t1 = time.perf_counter()
            outcome = _scan_once(backend, walks, queries, config["radius"])
            best_wall = min(best_wall, time.perf_counter() - t1)
        phases[f"scan_{name}"] = time.perf_counter() - t0
        backends[name] = {"wall_seconds": round(best_wall, 6), "outcome": outcome}
        if name == "scalar":
            reference = outcome

    if reference is None:
        failures.append("scalar reference backend is not registered")
    else:
        for name, entry in backends.items():
            if name == "scalar":
                continue
            failures.extend(_parity_failures(reference, entry["outcome"], name))

    scalar_wall = backends.get("scalar", {}).get("wall_seconds", math.inf)
    report_backends = {}
    for name, entry in backends.items():
        wall = entry["wall_seconds"]
        report_backends[name] = {
            "available": True,
            "wall_seconds": wall,
            "speedup_vs_scalar": round(scalar_wall / wall, 3) if wall > 0 else None,
            "steps": entry["outcome"]["steps"],
            "answers_match_scalar": reference is not None
            and not _parity_failures(reference, entry["outcome"], name),
        }
    if "numba" not in backends:
        report_backends["numba"] = {
            "available": False,
            "import_error": NUMBA_IMPORT_ERROR,
        }
    elif min_speedup > 0:
        speedup = report_backends["numba"]["speedup_vs_scalar"]
        if speedup is None or speedup < min_speedup:
            failures.append(
                f"numba backend speedup {speedup}x over scalar is below the "
                f"required {min_speedup}x floor"
            )

    fastest = min(
        (name for name in backends),
        key=lambda name: backends[name]["wall_seconds"],
    )
    report = {
        "config": dict(config),
        "min_compiled_speedup": min_speedup,
        "backends": report_backends,
        "fastest": fastest,
        "parity": "exact" if not failures else "FAILED",
        "failures": failures,
    }
    return report, phases


def _print_report(report: dict) -> None:
    print(f"kernel backends (fastest: {report['fastest']}, parity: {report['parity']})")
    for name, entry in sorted(report["backends"].items()):
        if not entry.get("available", True):
            print(f"  {name:>10}: unavailable ({entry.get('import_error')})")
            continue
        speed = entry.get("speedup_vs_scalar")
        speed_s = f"{speed}x vs scalar" if speed is not None else "n/a"
        print(
            f"  {name:>10}: {entry['wall_seconds']*1e3:8.2f} ms  {speed_s:>18}  "
            f"steps={entry['steps']}  exact={entry['answers_match_scalar']}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small-input cross-backend exactness tripwire only (no timing floor, no artifact)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_COMPILED_SPEEDUP,
        help="required numba-vs-scalar speedup on the full scan (0 disables; default %(default)s)",
    )
    args = parser.parse_args(argv)

    _setup_path()
    config = dict(QUICK_CONFIG if args.quick else CONFIG)
    min_speedup = 0.0 if args.quick else args.min_speedup
    report, phases = run_benchmark(config, min_speedup)
    _print_report(report)

    if not args.quick:
        import harness

        harness.write_json_result("BENCH_kernels", report, phases)

    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
