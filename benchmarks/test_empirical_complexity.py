"""The O(n^1.06) claim: empirical per-comparison complexity of wedge search.

Section 1: "we can take the O(n^3) approach of [1] and on real world
problems bring the average complexity down to O(n^1.06)".  The experiment:
fix a database size, vary the series length n, measure the *average number
of steps per object comparison* for the wedge search, and fit the log-log
slope.  Rotation-invariant brute force costs n^2 per comparison under ED
(n rotations x n steps) and n^3 under unconstrained DTW; the wedge search
should come out dramatically sub-quadratic, approaching linear.
"""

import numpy as np

from harness import scale, write_result
from repro.core.search import wedge_search
from repro.datasets.shapes_data import projectile_point_collection
from repro.distances.euclidean import EuclideanMeasure

LENGTHS = (64, 128, 256, 512)


def run_complexity(m=None, n_queries=3, seed=106):
    m = m if m is not None else int(250 * scale())
    rng = np.random.default_rng(seed)
    measure = EuclideanMeasure()
    per_comparison = []
    for n in LENGTHS:
        archive = projectile_point_collection(np.random.default_rng(seed + n), m, length=n)
        steps = 0.0
        query_ids = rng.choice(m, size=n_queries, replace=False)
        for qid in query_ids:
            db = np.delete(archive, qid, axis=0)
            result = wedge_search(list(db), archive[qid], measure)
            steps += result.counter.steps / len(db)
        per_comparison.append(steps / n_queries)
    slope = np.polyfit(np.log(LENGTHS), np.log(per_comparison), 1)[0]
    return per_comparison, float(slope)


def test_empirical_complexity(benchmark):
    per_comparison, slope = benchmark.pedantic(run_complexity, rounds=1, iterations=1)

    lines = [
        "Empirical complexity -- average wedge-search steps per object comparison",
        "=" * 72,
        f"{'n':>6} {'steps/comparison':>18} {'n^2 (brute)':>14}",
    ]
    for n, steps in zip(LENGTHS, per_comparison):
        lines.append(f"{n:>6} {steps:>18.1f} {n * n:>14}")
    lines.append(f"fitted exponent: steps ~ n^{slope:.2f}  (paper: n^1.06; brute force: n^2)")
    write_result("empirical_complexity", "\n".join(lines))

    # Dramatically sub-quadratic: the whole point of the paper.
    assert slope < 1.6
    # And every length beats brute force by a wide margin.
    for n, steps in zip(LENGTHS, per_comparison):
        assert steps < 0.25 * n * n
