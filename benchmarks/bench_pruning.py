"""Pruning-cascade benchmark: LB_Improved on vs off, machine-readable.

A Figure-20-style rotation-invariant DTW search (projectile-point corpus,
Sakoe-Chiba band R=5) run twice through ``wedge_search`` -- once with the
LB_Improved tier disabled, once enabled -- recording for each configuration
the wall clock, the paper's ``num_steps``, the number of full DTW
computations, the per-tier rejection counts, and the envelope-cache
hit/miss stats.  The two runs must return identical nearest neighbours
(zero false dismissals) and the improved run must need strictly fewer full
DTW computations; either violation exits non-zero.

The numbers land in ``benchmarks/results/BENCH_pruning.json`` so the perf
trajectory is tracked across PRs.  ``--check-baseline`` re-runs the
benchmark and fails if the full-distance computation count regressed
against the committed baseline (with a small tolerance); the committed
file is refreshed by running this script with ``--write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_pruning.json"

#: Allowed relative growth of the full-distance computation count before
#: --check-baseline fails.  The corpus and seeds are fixed, so the count is
#: deterministic; the slack only absorbs intentional small reorderings.
TOLERANCE = 0.05

CONFIG = {
    "corpus": "projectile-points",
    "m": 40,
    "n": 64,
    "radius": 5,
    "seed": 17,
    "n_queries": 3,
}


def _setup_path() -> None:
    src = BENCH_DIR.parent / "src"
    for path in (str(BENCH_DIR), str(src)):
        if path not in sys.path:
            sys.path.insert(0, path)


def _run_config(archive, query_ids, measure, use_improved: bool) -> dict:
    import numpy as np

    from repro.core.search import wedge_search

    totals = {
        "wall_clock_s": 0.0,
        "steps": 0,
        "full_distance_computations": 0,
        "tier_rejections": {"kim": 0, "keogh": 0, "improved": 0},
        "envelope_cache": {"hits": 0, "misses": 0},
    }
    answers = []
    for qid in query_ids:
        database = list(np.delete(archive, qid, axis=0))
        query = archive[qid]
        t0 = time.perf_counter()
        result = wedge_search(database, query, measure, use_improved=use_improved)
        totals["wall_clock_s"] += time.perf_counter() - t0
        totals["steps"] += result.counter.steps
        totals["full_distance_computations"] += result.tier_stats["full_computations"]
        totals["tier_rejections"]["kim"] += result.tier_stats["kim_rejections"]
        totals["tier_rejections"]["keogh"] += result.tier_stats["keogh_rejections"]
        totals["tier_rejections"]["improved"] += result.tier_stats["improved_rejections"]
        totals["envelope_cache"]["hits"] += result.counter.envelope_cache_hits
        totals["envelope_cache"]["misses"] += result.counter.envelope_cache_misses
        answers.append((result.index, result.distance))
    totals["wall_clock_s"] = round(totals["wall_clock_s"], 4)
    return {"totals": totals, "answers": answers}


def run_benchmark() -> tuple[dict, dict]:
    """One deterministic LB_Improved on/off comparison.

    Returns ``(report, phase_timings)``: the machine-readable report plus
    per-phase wall-clock seconds (setup/warm-up vs the two measured
    configurations) destined for the artifact's provenance block.
    """
    _setup_path()
    import numpy as np

    phases: dict[str, float] = {}
    t0 = time.perf_counter()

    from repro.datasets.shapes_data import projectile_point_collection
    from repro.distances.dtw import DTWMeasure

    archive = projectile_point_collection(
        np.random.default_rng(CONFIG["seed"]), CONFIG["m"], length=CONFIG["n"]
    )
    rng = np.random.default_rng(CONFIG["seed"] + 1)
    query_ids = sorted(rng.choice(CONFIG["m"], size=CONFIG["n_queries"], replace=False))
    measure = DTWMeasure(radius=CONFIG["radius"])

    # Untimed warm-up so the first timed configuration does not absorb
    # one-off import and allocator costs (it would bias the comparison).
    from repro.core.search import wedge_search

    wedge_search(list(archive[1:8]), archive[0], measure)
    phases["setup"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    off = _run_config(archive, query_ids, measure, use_improved=False)
    phases["improved_off"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    on = _run_config(archive, query_ids, measure, use_improved=True)
    phases["improved_on"] = time.perf_counter() - t0

    identical = all(
        a[0] == b[0] and math.isclose(a[1], b[1], rel_tol=1e-9)
        for a, b in zip(off["answers"], on["answers"])
    )
    report = {
        "config": CONFIG,
        "improved_off": off["totals"],
        "improved_on": on["totals"],
        "answers_identical": identical,
    }
    return report, phases


def _invariant_failures(report: dict) -> list[str]:
    """The hard guarantees every run must uphold."""
    failures = []
    if not report["answers_identical"]:
        failures.append("LB_Improved changed a nearest-neighbour answer (false dismissal)")
    full_off = report["improved_off"]["full_distance_computations"]
    full_on = report["improved_on"]["full_distance_computations"]
    if full_on >= full_off:
        failures.append(
            f"LB_Improved did not reduce full DTW computations ({full_on} >= {full_off})"
        )
    return failures


def _print_report(report: dict) -> None:
    off, on = report["improved_off"], report["improved_on"]
    full_off = off["full_distance_computations"]
    full_on = on["full_distance_computations"]
    print(
        f"full DTW computations: {full_off} -> {full_on} "
        f"({(1 - full_on / full_off) * 100:.1f}% fewer)"
    )
    print(f"wall clock: {off['wall_clock_s']:.3f}s -> {on['wall_clock_s']:.3f}s")
    print(f"steps: {off['steps']} -> {on['steps']}")
    print(
        "tier rejections (improved on): "
        f"kim={on['tier_rejections']['kim']} keogh={on['tier_rejections']['keogh']} "
        f"improved={on['tier_rejections']['improved']}"
    )
    print(
        f"envelope cache: {on['envelope_cache']['hits']} hits / "
        f"{on['envelope_cache']['misses']} misses"
    )
    if on["wall_clock_s"] > off["wall_clock_s"]:
        print("warning: wall clock did not improve this run (noisy machine?)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if full-distance computations regressed vs the committed baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh benchmarks/results/BENCH_pruning.json with this run",
    )
    args = parser.parse_args(argv)

    report, phase_timings = run_benchmark()
    _print_report(report)
    failures = _invariant_failures(report)

    if args.check_baseline:
        if not BASELINE_PATH.exists():
            failures.append(f"no baseline at {BASELINE_PATH}; run with --write-baseline first")
        else:
            baseline = json.loads(BASELINE_PATH.read_text())
            base_full = baseline["improved_on"]["full_distance_computations"]
            fresh_full = report["improved_on"]["full_distance_computations"]
            limit = base_full * (1 + TOLERANCE)
            print(f"baseline full DTW computations: {base_full} (limit {limit:.0f})")
            if fresh_full > limit:
                failures.append(
                    f"full-distance computations regressed: {fresh_full} > "
                    f"baseline {base_full} (+{TOLERANCE:.0%} tolerance)"
                )

    if args.write_baseline:
        import harness

        harness.write_json_result("BENCH_pruning", report, phase_timings)

    if failures:
        print("\nBENCH_pruning FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
