"""Convenience driver: run every experiment and print a combined report.

Equivalent to ``pytest benchmarks/ --benchmark-only`` followed by
concatenating ``benchmarks/results/*.txt``, but as one command::

    python benchmarks/run_all.py [--scale 4] [--only fig19,table8]

The per-experiment tables land in ``benchmarks/results/`` either way.

``--quick`` switches to the CI smoke mode: instead of the full experiment
sweep it checks, on tiny synthetic inputs, the invariants the experiments
rest on -- ``wedge_search`` must never examine more steps than
``brute_force_search`` while returning the same nearest neighbour, the
batched query engine must match the per-pair reference exactly
(``bench_batch_engine --quick``), the pruning cascade must hold its
recorded pruning power (``bench_pruning --check-baseline`` against
``benchmarks/results/BENCH_pruning.json``), the observability layer
must be a pure observer (bit-identical step counts with tracing on/off, a
monotone cascade tier funnel, and a parseable artifact written to
``benchmarks/results/obs_quick/`` for CI to upload), and the index
persistence layer must round-trip exactly (``bench_persistence --quick``:
built vs loaded vs mmap-loaded answers bit-identical, v1 shim intact,
single-byte corruption rejected), every registered kernel backend must
agree bit for bit with the scalar reference (``bench_kernels --quick``),
the sharded query service must answer bit-identically to a single
process under concurrent load (``bench_service --quick``), and the
cost-model query planner must keep ``strategy="auto"`` bit-identical to
the canonical fixed plan with a committed ``BENCH_planner.json`` holding
its acceptance bars (``bench_planner --quick``).  Any violation exits
non-zero, making this a perf-regression tripwire cheap enough to run on
every push.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"

EXPERIMENTS = [
    "test_table8_classification.py",
    "test_fig19_points_euclidean.py",
    "test_fig20_points_dtw.py",
    "test_fig21_heterogeneous.py",
    "test_fig22_lightcurves_euclidean.py",
    "test_fig23_lightcurves_dtw.py",
    "test_fig24_disk_access.py",
    "test_empirical_complexity.py",
    "test_sanity_clustering.py",
    "test_rotation_limited.py",
    "test_ablation_wedges.py",
    "test_baseline_measures.py",
    "test_index_structures.py",
    "test_mining_speedup.py",
]


def _obs_artifact_smoke(walks, m: int) -> int:
    """Observability tripwire: instrumentation must be a pure observer.

    Runs a handful of wedge queries twice -- bare, then with the full
    observability stack attached (tracer + metrics registry + query log) --
    and fails on any of:

    * step counts or answers differing between the two runs (tracing must
      never perturb the paper's ``num_steps`` accounting);
    * a non-monotone cascade tier funnel, per-query or aggregated
      (kim >= keogh-reached >= improved-reached >= full-distance);
    * the written artifact (``metrics.prom``, ``metrics.json``,
      ``trace.json``, ``queries.jsonl``, ``provenance.json`` under
      ``benchmarks/results/obs_quick/``) failing to parse back.

    CI uploads the directory on every run, so each workflow leaves behind
    an inspectable trace + metrics snapshot of the smoke queries.
    """
    import numpy as np

    from repro.core.search import wedge_search
    from repro.distances.dtw import DTWMeasure
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.provenance import provenance_block
    from repro.obs.querylog import QueryLogger, read_query_log
    from repro.obs.report import funnel_is_monotone, tier_funnel
    from repro.obs.trace import Tracer

    obs_dir = RESULTS_DIR / "obs_quick"
    if obs_dir.exists():
        shutil.rmtree(obs_dir)
    obs_dir.mkdir(parents=True)

    measure = DTWMeasure(radius=2)
    query_ids = (3, 19, 41)
    failures: list[str] = []
    phases: dict[str, float] = {}

    t0 = time.perf_counter()
    bare = {}
    for qid in query_ids:
        db = list(np.delete(walks[:m], qid, axis=0))
        bare[qid] = wedge_search(db, walks[qid], measure)
    phases["bare_runs"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    tracer = Tracer()
    registry = MetricsRegistry()
    with QueryLogger(obs_dir / "queries.jsonl") as log:
        for qid in query_ids:
            db = list(np.delete(walks[:m], qid, axis=0))
            observed = wedge_search(
                db,
                walks[qid],
                measure,
                tracer=tracer,
                metrics=registry,
                query_log=log,
                query_id=int(qid),
            )
            if observed.counter.steps != bare[qid].counter.steps:
                failures.append(
                    f"query#{qid}: tracing changed the step count "
                    f"({observed.counter.steps} != {bare[qid].counter.steps})"
                )
            if observed.index != bare[qid].index:
                failures.append(
                    f"query#{qid}: tracing changed the answer "
                    f"({observed.index} != {bare[qid].index})"
                )
            if not funnel_is_monotone(observed.tier_stats):
                failures.append(
                    f"query#{qid}: non-monotone tier funnel {tier_funnel(observed.tier_stats)}"
                )
            print(
                f"    obs query#{qid:>2}: {observed.counter.steps:>7} steps"
                " (bit-identical to untraced run)"
            )
    phases["instrumented_runs"] = time.perf_counter() - t0

    (obs_dir / "metrics.prom").write_text(registry.to_prometheus())
    (obs_dir / "metrics.json").write_text(registry.to_json() + "\n")
    (obs_dir / "trace.json").write_text(json.dumps(tracer.to_dict(), indent=2) + "\n")
    provenance = provenance_block(
        {
            "benchmark": "obs_quick",
            "phase_timings_s": {k: round(v, 4) for k, v in phases.items()},
        }
    )
    (obs_dir / "provenance.json").write_text(json.dumps(provenance, indent=2) + "\n")

    # The artifact must parse back: a trace nobody can read is no trace.
    records = read_query_log(obs_dir / "queries.jsonl")
    if len(records) != len(query_ids):
        failures.append(f"query log holds {len(records)} records, expected {len(query_ids)}")
    aggregated: dict[str, int] = {}
    for record in records:
        for key, value in (record.get("tier_stats") or {}).items():
            aggregated[key] = aggregated.get(key, 0) + int(value)
    funnel = tier_funnel(aggregated)
    if not funnel_is_monotone(aggregated):
        failures.append(f"aggregated tier funnel is not monotone: {funnel}")
    for artifact in ("metrics.json", "trace.json", "provenance.json"):
        json.loads((obs_dir / artifact).read_text())
    prom_text = (obs_dir / "metrics.prom").read_text()
    for family in ("queries_total", "query_steps", "cascade_reached_total"):
        if family not in prom_text:
            failures.append(f"metrics.prom is missing the {family} family")

    stages = "  ->  ".join(f"{stage} {count}" for stage, count in funnel)
    print(f"    tier funnel: {stages}")
    print(f"    artifact written to {obs_dir}")

    if failures:
        print("\nOBSERVABILITY SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def quick_smoke() -> int:
    """CI smoke: hard invariants on tiny inputs instead of the full sweep.

    Eight tripwires, all fatal:

    1. For every (measure, query) pair, ``wedge_search`` must report at most
       as many steps as ``brute_force_search`` and agree on the nearest
       neighbour -- pruning that costs more than brute force, or loses
       exactness, is a regression no figure would surface this cheaply.
    2. The batched engine must match the scalar per-pair path bit for bit
       (``bench_batch_engine --quick`` exits non-zero on any divergence).
    3. The pruning cascade must hold its recorded pruning power
       (``bench_pruning --check-baseline``).
    4. The observability stack must observe without perturbing
       (:func:`_obs_artifact_smoke`), leaving a parseable artifact behind
       for CI to upload.
    5. The persistence layer must round-trip exactly
       (``bench_persistence --quick``).
    6. Every registered kernel backend must produce bit-identical answers
       and step counts vs the scalar reference (``bench_kernels --quick``).
    7. The sharded query service must answer 20 concurrent clients
       bit-identically to single-process search, with a parseable merged
       ``/metrics`` exposition and a working answer cache
       (``bench_service --quick``).
    8. The cost-model query planner must keep ``strategy="auto"``
       bit-identical to the canonical fixed plan while its telemetry
       warms, and the committed ``BENCH_planner.json`` must hold its
       acceptance bars (``bench_planner --quick``).
    """
    src = BENCH_DIR.parent / "src"
    for path in (str(BENCH_DIR), str(src)):
        if path not in sys.path:
            sys.path.insert(0, path)
    import math

    import numpy as np

    from repro.core.search import brute_force_search, wedge_search
    from repro.distances.dtw import DTWMeasure
    from repro.distances.euclidean import EuclideanMeasure

    # m must be large enough to amortise the wedge strategy's charged O(n^2)
    # start-up cost; below ~32 objects an adversarial query can legitimately
    # push wedge past brute force, which is not the regression we hunt here.
    m = 64
    rng = np.random.default_rng(2006)
    walks = np.cumsum(rng.normal(size=(m + 1, 32)), axis=1)
    walks -= walks.mean(axis=1, keepdims=True)
    walks /= walks.std(axis=1, keepdims=True)

    failures = []
    for measure in (EuclideanMeasure(), DTWMeasure(radius=2)):
        for qid in range(0, m, 7):
            db = list(np.delete(walks[:m], qid, axis=0))
            query = walks[qid]
            wedge = wedge_search(db, query, measure)
            brute = brute_force_search(db, query, measure)
            label = f"{measure.name} query#{qid}"
            if wedge.counter.steps > brute.counter.steps:
                failures.append(
                    f"{label}: wedge examined {wedge.counter.steps} steps"
                    f" > brute force's {brute.counter.steps}"
                )
            if wedge.index != brute.index or not math.isclose(
                wedge.distance, brute.distance, rel_tol=1e-9
            ):
                failures.append(
                    f"{label}: wedge answer ({wedge.index}, {wedge.distance:.6f})"
                    f" != brute force ({brute.index}, {brute.distance:.6f})"
                )
            print(
                f"{label:>24}: wedge {wedge.counter.steps:>7} steps"
                f" <= brute {brute.counter.steps:>7}"
                f" ({wedge.counter.steps / brute.counter.steps:.3f}x)"
            )

    if failures:
        print("\nQUICK SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1

    print("\n=== bench_batch_engine --quick ===", flush=True)
    import bench_batch_engine

    rc = bench_batch_engine.main(["--quick"])
    if rc != 0:
        return rc

    # Third tripwire: the tiered pruning cascade must keep its recorded
    # pruning power -- identical answers with LB_Improved on/off, strictly
    # fewer full DTW computations, and no regression of that count against
    # the committed BENCH_pruning.json baseline.
    print("\n=== bench_pruning --check-baseline ===", flush=True)
    import bench_pruning

    rc = bench_pruning.main(["--check-baseline"])
    if rc != 0:
        return rc

    # Fourth tripwire: instrumentation is a pure observer -- step counts
    # bit-identical with tracing on/off, a monotone tier funnel, and an
    # observability artifact that parses back (CI uploads it every run).
    print("\n=== observability artifact (results/obs_quick) ===", flush=True)
    rc = _obs_artifact_smoke(walks, m)
    if rc != 0:
        return rc

    # Fifth tripwire: the durable-index lifecycle -- a save/load round trip
    # (in-RAM and mmap) must answer bit-identically to the built index, the
    # v1 migration shim must keep working, and any single-byte corruption
    # of the collection sidecar must be rejected at load.
    print("\n=== bench_persistence --quick ===", flush=True)
    import bench_persistence

    rc = bench_persistence.main(["--quick"])
    if rc != 0:
        return rc

    # Sixth tripwire: every registered kernel backend (scalar reference,
    # pure-NumPy wavefront, numba when installed) must return bit-identical
    # distances, bounds, and step counts on the same DTW/LCSS scan.
    print("\n=== bench_kernels --quick ===", flush=True)
    import bench_kernels

    rc = bench_kernels.main(["--quick"])
    if rc != 0:
        return rc

    # Seventh tripwire: the sharded query service -- shard, serve, answer
    # 20 concurrent clients bit-identically to single-process search, merge
    # worker metrics into one parseable exposition, and serve repeats from
    # the answer cache.
    print("\n=== bench_service --quick ===", flush=True)
    import bench_service

    rc = bench_service.main(["--quick"])
    if rc != 0:
        return rc

    # Eighth tripwire: the cost-model query planner -- ``strategy="auto"``
    # must answer bit-identically to the canonical fixed plan while its
    # live telemetry warms, and the committed BENCH_planner.json must parse
    # back with provenance and show auto within 10% of the best fixed
    # plan's per-query wall clock (strictly better than the worst).
    print("\n=== bench_planner --quick ===", flush=True)
    import bench_planner

    return bench_planner.main(["--quick"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None, help="REPRO_SCALE for this run (default: inherit env)")
    parser.add_argument("--only", default=None, help="comma-separated substrings selecting experiments")
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: invariant tripwires on tiny inputs, no full sweep"
    )
    args = parser.parse_args(argv)

    if args.quick:
        return quick_smoke()

    env = dict(os.environ)
    if args.scale is not None:
        env["REPRO_SCALE"] = str(args.scale)

    selected = EXPERIMENTS
    if args.only:
        needles = [s.strip() for s in args.only.split(",") if s.strip()]
        selected = [e for e in EXPERIMENTS if any(n in e for n in needles)]
        if not selected:
            print(f"no experiment matches {args.only!r}", file=sys.stderr)
            return 2

    failures = []
    for experiment in selected:
        print(f"=== {experiment} ===", flush=True)
        t0 = time.time()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(BENCH_DIR / experiment), "--benchmark-only", "-q"],
            env=env,
            capture_output=True,
            text=True,
        )
        status = "ok" if proc.returncode == 0 else "FAILED"
        print(f"    {status} in {time.time() - t0:.0f}s", flush=True)
        if proc.returncode != 0:
            failures.append(experiment)
            print(proc.stdout[-2000:])
            print(proc.stderr[-1000:], file=sys.stderr)

    print("\n" + "=" * 72)
    print("COMBINED REPORT")
    print("=" * 72)
    for result_file in sorted(RESULTS_DIR.glob("*.txt")):
        print()
        print(result_file.read_text().rstrip())

    if failures:
        print(f"\nFAILED experiments: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
