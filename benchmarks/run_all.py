"""Convenience driver: run every experiment and print a combined report.

Equivalent to ``pytest benchmarks/ --benchmark-only`` followed by
concatenating ``benchmarks/results/*.txt``, but as one command::

    python benchmarks/run_all.py [--scale 4] [--only fig19,table8]

The per-experiment tables land in ``benchmarks/results/`` either way.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"

EXPERIMENTS = [
    "test_table8_classification.py",
    "test_fig19_points_euclidean.py",
    "test_fig20_points_dtw.py",
    "test_fig21_heterogeneous.py",
    "test_fig22_lightcurves_euclidean.py",
    "test_fig23_lightcurves_dtw.py",
    "test_fig24_disk_access.py",
    "test_empirical_complexity.py",
    "test_sanity_clustering.py",
    "test_rotation_limited.py",
    "test_ablation_wedges.py",
    "test_baseline_measures.py",
    "test_index_structures.py",
    "test_mining_speedup.py",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None,
                        help="REPRO_SCALE for this run (default: inherit env)")
    parser.add_argument("--only", default=None,
                        help="comma-separated substrings selecting experiments")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    if args.scale is not None:
        env["REPRO_SCALE"] = str(args.scale)

    selected = EXPERIMENTS
    if args.only:
        needles = [s.strip() for s in args.only.split(",") if s.strip()]
        selected = [e for e in EXPERIMENTS if any(n in e for n in needles)]
        if not selected:
            print(f"no experiment matches {args.only!r}", file=sys.stderr)
            return 2

    failures = []
    for experiment in selected:
        print(f"=== {experiment} ===", flush=True)
        t0 = time.time()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(BENCH_DIR / experiment),
             "--benchmark-only", "-q"],
            env=env,
            capture_output=True,
            text=True,
        )
        status = "ok" if proc.returncode == 0 else "FAILED"
        print(f"    {status} in {time.time() - t0:.0f}s", flush=True)
        if proc.returncode != 0:
            failures.append(experiment)
            print(proc.stdout[-2000:])
            print(proc.stderr[-1000:], file=sys.stderr)

    print("\n" + "=" * 72)
    print("COMBINED REPORT")
    print("=" * 72)
    for result_file in sorted(RESULTS_DIR.glob("*.txt")):
        print()
        print(result_file.read_text().rstrip())

    if failures:
        print(f"\nFAILED experiments: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
