"""Shared benchmark harness: the paper's experimental protocol, runnable.

Section 5.3's protocol, reproduced faithfully:

* performance is the implementation-free ``num_steps`` metric, reported
  **relative to brute force** (whose cost is analytic and deterministic);
* queries are randomly chosen database members, removed from the database
  before searching, and results are averaged over several queries;
* the wedge strategy's O(n^2) start-up cost is charged;
* database size ``m`` sweeps a doubling grid, so each figure is a series of
  (m, fraction-of-brute-force) points per strategy.

Every experiment writes a plain-text table to ``benchmarks/results/`` (and
echoes it to stdout) in the same rows/series layout as the paper's figure,
so paper-vs-measured comparisons are a diff away.

Scale: the default grids are CI-sized.  Set ``REPRO_SCALE=4`` (or more) to
grow databases toward the paper's sizes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from repro.core.search import (
    early_abandon_search,
    fft_search,
    search_many,
    wedge_search,
)
from repro.distances.base import Measure

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def scale() -> float:
    raw = os.environ.get("REPRO_SCALE", "")
    return float(raw) if raw else 1.0


def size_grid(maximum: int, minimum: int = 32) -> list[int]:
    """Doubling grid of database sizes, like the paper's x axes."""
    maximum = int(maximum * scale())
    sizes = []
    m = minimum
    while m < maximum:
        sizes.append(m)
        m *= 2
    sizes.append(maximum)
    return sizes


@dataclass
class SpeedupResult:
    """One figure's worth of data: per-strategy fractions over m."""

    title: str
    m_values: list[int]
    fractions: dict[str, list[float]] = field(default_factory=dict)

    def format(self) -> str:
        lines = [self.title, "=" * len(self.title)]
        header = f"{'m':>8} " + " ".join(f"{name:>14}" for name in self.fractions)
        lines.append(header)
        for i, m in enumerate(self.m_values):
            row = f"{m:>8} " + " ".join(
                f"{series[i]:>14.5f}" for series in self.fractions.values()
            )
            lines.append(row)
        return "\n".join(lines)


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def write_json_result(
    name: str,
    payload: dict,
    phase_timings: dict[str, float] | None = None,
    provenance_extra: dict | None = None,
) -> Path:
    """Write a ``BENCH_*.json`` artifact with an embedded provenance block.

    The provenance (git SHA + dirty flag, platform, interpreter/NumPy
    versions, ``REPRO_SCALE``, UTC timestamp) answers "what produced this
    number" when two artifacts disagree; ``phase_timings`` adds per-phase
    wall-clock seconds (setup vs measured runs) so a slow artifact can be
    blamed on the right phase.  ``provenance_extra`` merges additional
    benchmark-specific facts (e.g. the service benchmark stamps its
    resolved kernel backend and shard counts) into the provenance block.
    """
    from repro.obs.provenance import provenance_block

    RESULTS_DIR.mkdir(exist_ok=True)
    extra: dict = {"benchmark": name}
    if phase_timings:
        extra["phase_timings_s"] = {k: round(v, 4) for k, v in phase_timings.items()}
    if provenance_extra:
        extra.update(provenance_extra)
    document = dict(payload)
    document["provenance"] = provenance_block(extra)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"[written to {path}]")
    return path


def brute_force_steps(m: int, n_rotations: int, pairwise_cost: int) -> int:
    """Analytic brute-force cost: every rotation fully compared, no pruning."""
    return m * n_rotations * pairwise_cost


StrategyFn = Callable[[list, np.ndarray, Measure], int]


def ea_strategy(db, query, measure) -> int:
    return early_abandon_search(db, query, measure).counter.steps


def fft_strategy(db, query, measure) -> int:
    return fft_search(db, query, measure).counter.steps


def wedge_strategy(db, query, measure) -> int:
    return wedge_search(db, query, measure).counter.steps


def time_search_many(
    database,
    queries,
    measure: Measure,
    strategy: str = "wedge",
    n_jobs: int = 1,
    executor: str | None = None,
):
    """Wall-clock one :func:`search_many` call.

    Returns ``(seconds, results)`` so throughput experiments can both time
    the batch and verify that parallel results match the sequential ones
    (the engine's exactness contract).
    """
    start = perf_counter()
    results = search_many(
        database, queries, measure, strategy=strategy, n_jobs=n_jobs, executor=executor
    )
    return perf_counter() - start, results


def run_speedup_experiment(
    title: str,
    archive: np.ndarray,
    measure: Measure,
    strategies: dict[str, StrategyFn],
    m_values: Sequence[int] | None = None,
    n_queries: int = 3,
    seed: int = 0,
    brute_pairwise_cost: int | None = None,
    extra_brute_lines: dict[str, int] | None = None,
    mirror: bool = False,
) -> SpeedupResult:
    """The Figure 19-23 protocol.

    Parameters
    ----------
    archive:
        ``(m_max, n)`` collection; prefixes of it form the databases.
    measure:
        The distance measure under test.
    strategies:
        Name -> callable returning total steps for one query.
    m_values:
        Database sizes; defaults to a doubling grid up to ``len(archive)``.
    n_queries:
        Queries per size (query = random member, removed).
    brute_pairwise_cost:
        Steps of one full distance computation (default
        ``measure.pairwise_cost(n)``); brute force is
        ``m * n_rotations * this``, computed analytically.
    extra_brute_lines:
        Additional analytic baselines, e.g. the banded "Brute force, R=5"
        line of Figure 20: name -> pairwise cost.
    """
    rng = np.random.default_rng(seed)
    archive = np.asarray(archive, dtype=np.float64)
    m_max, n = archive.shape
    if m_values is None:
        m_values = size_grid(m_max)
    m_values = [m for m in m_values if m <= m_max]
    pairwise = brute_pairwise_cost if brute_pairwise_cost is not None else measure.pairwise_cost(n)
    n_rotations = n * (2 if mirror else 1)

    result = SpeedupResult(title, list(m_values))
    result.fractions["brute-force"] = [1.0] * len(m_values)
    for name, cost in (extra_brute_lines or {}).items():
        result.fractions[name] = [
            cost / pairwise for _ in m_values
        ]
    for name in strategies:
        result.fractions[name] = []

    for m in m_values:
        query_ids = rng.choice(m, size=min(n_queries, m), replace=False)
        totals = {name: 0.0 for name in strategies}
        for qid in query_ids:
            db = np.delete(archive[:m], qid, axis=0)
            query = archive[qid]
            brute = brute_force_steps(len(db), n_rotations, pairwise)
            for name, fn in strategies.items():
                steps = fn(list(db), query, measure)
                totals[name] += steps / brute
        for name in strategies:
            result.fractions[name].append(totals[name] / len(query_ids))
    return result
