"""Session-scoped archives shared by the benchmark suite.

Default sizes are CI-friendly; ``REPRO_SCALE`` grows them toward the
paper's scale (16,000 projectile points, 5,844 heterogeneous objects at
length 1,024, ~1,000 light curves).
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import scale  # noqa: E402


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(2006)


@pytest.fixture(scope="session")
def points_archive():
    """Homogeneous projectile points, length 251 (the paper's length)."""
    from repro.datasets.shapes_data import projectile_point_collection

    size = int(1000 * scale())
    return projectile_point_collection(np.random.default_rng(17), size, length=251)


@pytest.fixture(scope="session")
def points_archive_small(points_archive):
    """Prefix used by the slower DTW experiments."""
    return points_archive[: min(len(points_archive), int(320 * scale()))]


@pytest.fixture(scope="session")
def heterogeneous_archive():
    """Mixed collection (paper: every dataset + points, length 1,024)."""
    from repro.datasets.registry import heterogeneous_collection

    size = int(400 * scale())
    length = 512 if scale() >= 2 else 256
    return heterogeneous_collection(np.random.default_rng(23), size, length=length)


@pytest.fixture(scope="session")
def lightcurve_archive():
    """Folded light curves across the three periodic-variable classes."""
    from repro.datasets.lightcurve_data import light_curve_collection

    size = int(600 * scale())
    return light_curve_collection(np.random.default_rng(29), size, length=256)
