"""Section 2 / 5.1 baseline comparison: the competitors, measured.

The paper contextualises its approach against three families of rivals,
with specific claims this bench verifies on a MixedBag-style dataset
(several visually distinct object categories):

* image-space measures -- "the Chamfer and Hausdorff distance measures
  ... achieved an error rate of 6.0% and 7.0% respectively, slightly worse
  than Euclidean distance" (which scored 4.375%);
* rotation-invariant feature vectors -- useful only "for making quick
  coarse discriminations";
* landmark (major-axis) alignment -- brittle on low-eccentricity shapes.

Absolute error rates differ on synthetic data; the *ordering* is the
claim under test: rotation-invariant 1-D Euclidean matching is at least as
accurate as every baseline, at a fraction of the comparison cost.
"""

import numpy as np

from harness import write_result
from repro.classify.knn import leave_one_out_error
from repro.datasets.shapes_data import Dataset
from repro.distances.euclidean import euclidean_distance
from repro.distances.imagespace import rotation_invariant_pointset_distance
from repro.shapes.convert import polygon_to_series
from repro.shapes.descriptors import shape_signature, signature_classify_error
from repro.shapes.generators import fourier_blob, rotate_polygon
from repro.shapes.landmarks import landmark_series
from repro.timeseries.ops import circular_shift


def build_mixed_bag(rng, n_classes=5, per_class=6):
    """Categories that differ in *arrangement*, not coarse statistics.

    Every class carries the same harmonic orders and amplitudes and
    differs only in the relative phases: the shapes are all equally round
    (so the major axis is noise-driven), share circularity/solidity (so
    feature vectors are blind), yet have distinct boundary arrangements
    that full-resolution matching separates easily.  This is the regime
    where the baselines' shortcuts show.
    """
    polygons, labels = [], []
    for label in range(n_classes):
        phases = rng.uniform(0, 2 * np.pi, 3)
        harmonics = [(3, 0.22, phases[0]), (5, 0.15, phases[1]), (7, 0.10, phases[2])]
        for _ in range(per_class):
            blob = fourier_blob(rng, harmonics, jitter=0.08)
            # Every specimen arrives at a random orientation -- the whole
            # point of the comparison.
            polygons.append(rotate_polygon(blob, float(rng.uniform(0, 360.0))))
            labels.append(label)
    return polygons, np.asarray(labels)


def loo_error_from_matrix(matrix, labels):
    matrix = matrix.copy()
    np.fill_diagonal(matrix, np.inf)
    nearest = np.argmin(matrix, axis=1)
    return 100.0 * float(np.mean(labels[nearest] != labels))


def run_baselines():
    rng = np.random.default_rng(51)
    polygons, labels = build_mixed_bag(rng)
    k = len(polygons)
    n = 96

    results = {}

    # The paper's approach: rotation-invariant ED on centroid-distance series.
    series = [
        circular_shift(polygon_to_series(p, n), int(rng.integers(n))) for p in polygons
    ]
    from repro.distances.euclidean import EuclideanMeasure

    dataset = Dataset("mixed-bag", np.vstack(series), labels)
    results["rotation-invariant ED"] = leave_one_out_error(dataset, EuclideanMeasure())

    # Landmark (major-axis) alignment: plain ED at one fixed rotation.
    landmark = np.vstack([landmark_series(p, n, method="major-axis") for p in polygons])
    matrix = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            matrix[i, j] = matrix[j, i] = euclidean_distance(landmark[i], landmark[j])
    results["major-axis landmark ED"] = loo_error_from_matrix(matrix, labels)

    # Rotation-invariant feature vector.
    features = np.vstack([shape_signature(p) for p in polygons])
    results["feature signature"] = signature_classify_error(features, labels)

    # Image-space measures with brute-force rotation search.
    for metric in ("chamfer", "hausdorff"):
        matrix = np.zeros((k, k))
        for i in range(k):
            for j in range(i + 1, k):
                matrix[i, j] = matrix[j, i] = rotation_invariant_pointset_distance(
                    polygons[i], polygons[j], metric, n_rotations=36, n_samples=64
                )
        results[f"{metric} (36 rotations)"] = loo_error_from_matrix(matrix, labels)
    return results


def test_baseline_measures(benchmark):
    results = benchmark.pedantic(run_baselines, rounds=1, iterations=1)

    lines = [
        "Baseline comparison on a MixedBag-style dataset (1-NN LOO error %)",
        "=" * 68,
    ]
    for name, error in sorted(results.items(), key=lambda kv: kv[1]):
        lines.append(f"{name:>26}: {error:6.2f}%")
    write_result("baseline_measures", "\n".join(lines))

    ours = results["rotation-invariant ED"]
    # The lossy baselines pay for their shortcuts: feature vectors (poor
    # discrimination) and the landmark alignment (noise-driven axis on
    # round shapes) trail clearly.
    assert results["feature signature"] > ours + 5.0
    assert results["major-axis landmark ED"] >= ours
    # (The dramatic landmark failure shows on same-specimen pairs -- see
    # test_sanity_clustering and tests/test_landmarks.py; as a classifier
    # it degrades more gently because any same-class neighbour will do.)
    # The image-space measures, given their own brute-force rotation
    # search, belong to the accurate-but-slow family: comparable accuracy
    # to the 1-D representation (the paper: "1D representations can achieve
    # comparable or superior accuracy") at O(R p^2) cost per comparison.
    assert abs(results["chamfer (36 rotations)"] - ours) <= 10.0
    assert abs(results["hausdorff (36 rotations)"] - ours) <= 10.0
