"""Rotation-limited and mirror-invariant queries (Section 3's generalisations).

Not a numbered figure in the paper, but a claimed capability with a clear
cost model: restricting the admissible rotations shrinks the candidate set
(and therefore the work), while mirror invariance doubles it.  This bench
quantifies both against the unrestricted query on the projectile-point
archive, and verifies the semantics (the limited query never matches a
rotation outside its window).
"""

import numpy as np

from harness import write_result
from repro.core.search import wedge_search
from repro.distances.euclidean import EuclideanMeasure

ANGLES = (15.0, 45.0, 90.0, 180.0)


def run_rotation_limited(archive, n_queries=3, seed=11):
    rng = np.random.default_rng(seed)
    measure = EuclideanMeasure()
    query_ids = rng.choice(len(archive), size=n_queries, replace=False)
    rows = {}
    baseline = 0.0
    mirror_cost = 0.0
    for qid in query_ids:
        db = list(np.delete(archive, qid, axis=0))
        baseline += wedge_search(db, archive[qid], measure).counter.steps
        mirror_cost += wedge_search(db, archive[qid], measure, mirror=True).counter.steps
    baseline /= n_queries
    mirror_cost /= n_queries
    for angle in ANGLES:
        total = 0.0
        for qid in query_ids:
            from repro.core.search import RotationQuery

            db = list(np.delete(archive, qid, axis=0))
            rq = RotationQuery(archive[qid], max_degrees=angle)
            result = wedge_search(db, rq, measure)
            total += result.counter.steps
            n = archive.shape[1]
            max_shift = int(angle * n / 360.0)
            # result.rotation indexes the (restricted) rotation set; map it
            # back to the circular shift it denotes.
            shift = rq.rotation_set.shifts[result.rotation]
            assert shift <= max_shift or shift >= n - max_shift
        rows[angle] = total / n_queries
    return baseline, mirror_cost, rows


def test_rotation_limited_queries(benchmark, points_archive_small):
    archive = points_archive_small[: min(len(points_archive_small), 200)]
    baseline, mirror_cost, rows = benchmark.pedantic(
        lambda: run_rotation_limited(archive), rounds=1, iterations=1
    )

    lines = [
        "Rotation-limited and mirror-invariant query cost (wedge search, steps)",
        "=" * 72,
        f"{'query type':>24} {'steps':>14} {'vs unrestricted':>16}",
        f"{'unrestricted':>24} {baseline:>14.0f} {1.0:>16.2f}",
        f"{'mirror-invariant':>24} {mirror_cost:>14.0f} {mirror_cost / baseline:>16.2f}",
    ]
    for angle, steps in rows.items():
        lines.append(
            f"{f'limited to +-{angle:g} deg':>24} {steps:>14.0f} {steps / baseline:>16.2f}"
        )
    write_result("rotation_limited", "\n".join(lines))

    # Tighter windows cost less; the tightest is far below unrestricted.
    costs = [rows[a] for a in ANGLES]
    assert costs[0] <= costs[-1]
    assert rows[15.0] < baseline
    # Mirror invariance costs more than plain, but far less than 2x brute
    # (the wedges absorb the doubled candidate set).
    assert mirror_cost > baseline * 0.9
