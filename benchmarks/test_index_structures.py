"""Index-structure ablation: flat scan vs VP-tree vs R-tree (Section 4.2).

Table 7 indexes with a VP-tree; the envelope-indexing literature ([16],
[37]) uses R-trees.  All three organisations sit in front of the same
filter-and-refine pipeline and are exact, so the comparison is purely
about work:

* **fraction retrieved from disk** -- identical across structures (the
  candidate *set* is determined by the bounds, not their organisation);
* **signature tests** -- how many in-memory bound evaluations each
  structure spends to produce that candidate stream; the trees should
  evaluate far fewer than the flat scan's m.
"""

import numpy as np

from harness import write_result
from repro.distances.dtw import DTWMeasure
from repro.distances.euclidean import EuclideanMeasure
from repro.index.linear_scan import SignatureFilteredScan

STRUCTURES = ("flat", "vptree", "rtree")


def run_structures(archive, n_queries=5, seed=47):
    rng = np.random.default_rng(seed)
    query_ids = rng.choice(len(archive), size=n_queries, replace=False)
    rows = {}
    for structure in STRUCTURES:
        stats = {"ed-tests": [], "ed-frac": [], "dtw-tests": [], "dtw-frac": []}
        for qid in query_ids:
            db = np.delete(archive, qid, axis=0)
            index = SignatureFilteredScan(db, n_coefficients=16, structure=structure)
            query = archive[qid]
            answer = index.query(query, EuclideanMeasure())
            stats["ed-tests"].append(answer.signature_tests)
            stats["ed-frac"].append(answer.fraction_retrieved)
            if structure != "vptree":  # VP-tree routes only Euclidean
                answer = index.query(query, DTWMeasure(radius=5))
                stats["dtw-tests"].append(answer.signature_tests)
                stats["dtw-frac"].append(answer.fraction_retrieved)
        rows[structure] = {key: float(np.mean(vals)) if vals else float("nan") for key, vals in stats.items()}
    return rows


def test_index_structures(benchmark, points_archive_small):
    archive = points_archive_small[: min(len(points_archive_small), 250)]
    rows = benchmark.pedantic(lambda: run_structures(archive), rounds=1, iterations=1)

    lines = [
        "Index structures -- signature tests and disk fraction (D=16)",
        "=" * 70,
        f"{'structure':>10} {'ED sig-tests':>14} {'ED disk':>9} {'DTW sig-tests':>15} {'DTW disk':>10}",
    ]
    for structure, stats in rows.items():
        lines.append(
            f"{structure:>10} {stats['ed-tests']:>14.1f} {stats['ed-frac']:>9.3f} "
            f"{stats['dtw-tests']:>15.1f} {stats['dtw-frac']:>10.3f}"
        )
    write_result("index_structures", "\n".join(lines))

    # Exactness means identical disk fractions across structures.
    ed_fracs = [rows[s]["ed-frac"] for s in STRUCTURES]
    assert max(ed_fracs) - min(ed_fracs) < 1e-9
    m = len(archive) - 1
    assert rows["flat"]["ed-tests"] == m
    # The metric tree prunes in-memory work substantially.
    assert rows["vptree"]["ed-tests"] < 0.8 * m
    # The R-tree is exact but, at D=16, its MBRs overlap so heavily (the
    # classic dimensionality curse for rectangle trees) that it saves
    # little over the flat scan -- a finding, not a failure: it motivates
    # the paper's choice of a *metric* tree in Table 7.
    assert rows["rtree"]["ed-tests"] < 1.5 * m
