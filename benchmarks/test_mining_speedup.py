"""Mining-layer benchmarks: the wedge engine as a data-mining subroutine.

The paper's conclusion promises wedge search inside clustering,
classification, and motif discovery; this bench quantifies the payoff on
two representative mining tasks plus the streaming filter:

* **discord discovery** (the Section 2.4 "unusual light curves" hunt) --
  all-pairs NN distances, wedge-pruned vs the analytic brute-force cost;
* **motif discovery** -- closest pair with Fourier pre-ordering;
* **stream filtering** -- steps per window against a pattern set vs the
  exhaustive per-pattern scan.
"""

import numpy as np

from harness import write_result
from repro.core.counters import StepCounter
from repro.datasets.lightcurve_data import light_curve_collection
from repro.distances.euclidean import EuclideanMeasure
from repro.mining.discords import find_discords
from repro.mining.motifs import find_motif
from repro.mining.streaming import StreamMonitor


def run_mining():
    measure = EuclideanMeasure()
    archive = light_curve_collection(np.random.default_rng(31), 60, length=128)
    m, n = archive.shape
    results = {}

    counter = StepCounter()
    find_discords(list(archive), measure, top=3, counter=counter)
    brute = m * (m - 1) * n * n  # every ordered pair, every rotation, full ED
    results["discords"] = (counter.steps, brute)

    counter = StepCounter()
    find_motif(list(archive), measure, counter=counter)
    brute_pairs = m * (m - 1) // 2 * n * n
    results["motif"] = (counter.steps, brute_pairs)

    patterns = archive[:8, :32].copy()
    stream = np.concatenate([light_curve_collection(np.random.default_rng(32), 4, length=128).ravel()])
    monitor = StreamMonitor(patterns, measure, threshold=1.0)
    monitor.process_batch(stream)
    exhaustive = monitor.windows_seen * patterns.shape[0] * patterns.shape[1]
    results["stream-filter"] = (monitor.counter.steps, exhaustive)
    return results


def test_mining_speedup(benchmark):
    results = benchmark.pedantic(run_mining, rounds=1, iterations=1)

    lines = [
        "Mining-layer speedups (wedge-pruned steps vs exhaustive)",
        "=" * 64,
        f"{'task':>16} {'steps':>14} {'exhaustive':>14} {'fraction':>10}",
    ]
    for task, (steps, brute) in results.items():
        lines.append(f"{task:>16} {steps:>14,} {brute:>14,} {steps / brute:>10.4f}")
    write_result("mining_speedup", "\n".join(lines))

    for task, (steps, brute) in results.items():
        budget = 0.5 if task == "stream-filter" else 0.2
        assert steps < budget * brute, task
