"""Durable-index benchmark: cold load vs recompute, mmap vs in-RAM queries.

The disk-index argument of Section 5.4 assumes an index that is *built once
and queried many times*: the O(m n log n) signature pass is paid at build
time and amortised over every later query.  This benchmark measures what
the format-v2 archive actually buys:

* **cold load vs recompute** -- wall clock of ``load_index`` (checksum
  verification included) against rebuilding ``SignatureFilteredScan`` from
  the raw collection;
* **mmap vs in-RAM** -- per-query wall clock with the collection sidecar
  memory-mapped (``np.load(..., mmap_mode="r")``) against fully loaded;

while enforcing the exactness contract as hard invariants (non-zero exit):

* built, in-RAM-loaded and mmap-loaded indexes return bit-identical
  answers, step counts and retrieval fractions on Euclidean and DTW
  queries;
* a legacy v1 archive loaded through the migration shim answers
  identically too;
* a single corrupted byte in the collection sidecar makes the load fail.

The numbers land in ``benchmarks/results/BENCH_persistence.json`` with an
embedded provenance block.  ``--quick`` shrinks the corpus for the CI
smoke run.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

CONFIG = {"m": 150, "n": 128, "coefficients": 16, "radius": 4, "seed": 23, "n_queries": 3}
QUICK_CONFIG = {"m": 40, "n": 64, "coefficients": 8, "radius": 2, "seed": 23, "n_queries": 2}


def _setup_path() -> None:
    src = BENCH_DIR.parent / "src"
    for path in (str(BENCH_DIR), str(src)):
        if path not in sys.path:
            sys.path.insert(0, path)


def _query_all(index, queries, measures) -> tuple[dict, float]:
    """Run every (query, measure) pair; return answers and total wall clock."""
    answers = {}
    start = time.perf_counter()
    for qid, query in enumerate(queries):
        for measure in measures:
            outcome = index.query(query, measure)
            answers[(qid, measure.name)] = (
                outcome.result.index,
                outcome.result.distance,
                outcome.result.rotation,
                outcome.result.counter.steps,
                outcome.objects_retrieved,
                outcome.fraction_retrieved,
            )
    return answers, time.perf_counter() - start


def run_benchmark(config: dict) -> tuple[dict, dict, list]:
    import numpy as np

    from repro.datasets.shapes_data import projectile_point_collection
    from repro.distances.dtw import DTWMeasure
    from repro.distances.euclidean import EuclideanMeasure
    from repro.index.linear_scan import SignatureFilteredScan
    from repro.persistence import _save_index_v1, load_index, save_index

    rng = np.random.default_rng(config["seed"])
    archive = projectile_point_collection(rng, config["m"], length=config["n"])
    queries = [
        archive[i] + rng.normal(0, 0.05, config["n"])
        for i in range(0, config["m"], max(1, config["m"] // config["n_queries"]))[
            : config["n_queries"]
        ]
    ]
    measures = (EuclideanMeasure(), DTWMeasure(radius=config["radius"]))
    failures: list[str] = []
    phases: dict[str, float] = {}

    t0 = time.perf_counter()
    built = SignatureFilteredScan(archive, n_coefficients=config["coefficients"])
    build_s = time.perf_counter() - t0
    phases["build"] = build_s

    report: dict = {"config": dict(config), "build_s": round(build_s, 6)}

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench_index.npz"
        t0 = time.perf_counter()
        save_index(built, path)
        phases["save"] = time.perf_counter() - t0
        sidecar = path.with_name(path.stem + ".data.npy")
        report["archive_bytes"] = path.stat().st_size
        report["sidecar_bytes"] = sidecar.stat().st_size

        t0 = time.perf_counter()
        loaded_ram = load_index(path)
        load_ram_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        loaded_mmap = load_index(path, mmap=True)
        load_mmap_s = time.perf_counter() - t0
        phases["load_ram"] = load_ram_s
        phases["load_mmap"] = load_mmap_s
        report["cold_load_ram_s"] = round(load_ram_s, 6)
        report["cold_load_mmap_s"] = round(load_mmap_s, 6)
        report["cold_load_vs_recompute_speedup"] = round(build_s / load_ram_s, 3)

        base_answers, base_wall = _query_all(built, queries, measures)
        ram_answers, ram_wall = _query_all(loaded_ram, queries, measures)
        mmap_answers, mmap_wall = _query_all(loaded_mmap, queries, measures)
        phases["queries"] = base_wall + ram_wall + mmap_wall
        report["query_wall_built_s"] = round(base_wall, 6)
        report["query_wall_ram_s"] = round(ram_wall, 6)
        report["query_wall_mmap_s"] = round(mmap_wall, 6)
        report["n_query_runs"] = len(base_answers)

        if ram_answers != base_answers:
            failures.append("in-RAM-loaded index disagrees with the built index")
        if mmap_answers != base_answers:
            failures.append("mmap-loaded index disagrees with the built index")
        if not loaded_mmap.store.backed_by_mmap:
            failures.append("mmap load did not leave the collection memory-mapped")

        # v1 migration shim must keep answering identically
        v1_path = Path(tmp) / "bench_index_v1.npz"
        _save_index_v1(built, v1_path)
        v1_answers, _ = _query_all(load_index(v1_path), queries, measures)
        if v1_answers != base_answers:
            failures.append("v1-shim-loaded index disagrees with the built index")

        # a single flipped byte in the sidecar must be rejected at load
        raw = bytearray(sidecar.read_bytes())
        raw[-5] ^= 0xFF
        sidecar.write_bytes(bytes(raw))
        try:
            load_index(path)
        except ValueError:
            report["corruption_rejected"] = True
        else:
            report["corruption_rejected"] = False
            failures.append("single-byte sidecar corruption was NOT rejected at load")

    return report, phases, failures


def _print_report(report: dict) -> None:
    config = report["config"]
    print(f"corpus: {config['m']} x {config['n']} projectile points")
    print(
        f"build {report['build_s'] * 1e3:8.1f} ms   "
        f"cold load (RAM) {report['cold_load_ram_s'] * 1e3:8.1f} ms   "
        f"cold load (mmap) {report['cold_load_mmap_s'] * 1e3:8.1f} ms"
    )
    print(f"cold-load-vs-recompute speedup: {report['cold_load_vs_recompute_speedup']:.1f}x")
    print(
        f"query wall over {report['n_query_runs']} runs: "
        f"built {report['query_wall_built_s'] * 1e3:8.1f} ms   "
        f"in-RAM {report['query_wall_ram_s'] * 1e3:8.1f} ms   "
        f"mmap {report['query_wall_mmap_s'] * 1e3:8.1f} ms"
    )
    print(
        f"archive: {report['archive_bytes'] / 1024:.0f} KiB npz "
        f"+ {report['sidecar_bytes'] / 1024:.0f} KiB sidecar; "
        f"corruption rejected: {report['corruption_rejected']}"
    )


def main(argv=None) -> int:
    _setup_path()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: tiny corpus, same invariants"
    )
    args = parser.parse_args(argv)

    report, phases, failures = run_benchmark(QUICK_CONFIG if args.quick else CONFIG)
    _print_report(report)

    import harness

    harness.write_json_result("BENCH_persistence", report, phases)

    if failures:
        print("\nBENCH_persistence FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
