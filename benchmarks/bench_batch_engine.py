"""Micro-benchmark: the batched query engine vs the seed per-pair path.

Two claims are checked, wall clock aside:

1. **Exactness** -- the batched Euclidean linear scan returns the same
   nearest neighbour, aligning rotation, distance, *and step counts* as a
   reference scan that calls the scalar ``ea_euclidean_distance`` once per
   (object, rotation) pair, i.e. the engine before batching.  Any mismatch
   exits non-zero: this doubles as a regression tripwire.
2. **Speed** -- on the acceptance workload (a 500-object x 256-length
   synthetic database, one full-rotation query) the batched scan must be
   several times faster; pass ``--min-speedup`` to enforce a floor.

A second section times :func:`repro.core.search.search_many` at several
pool sizes and verifies parallel results match the sequential ones.

Run directly::

    python benchmarks/bench_batch_engine.py            # acceptance size
    python benchmarks/bench_batch_engine.py --quick    # CI smoke size
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from harness import time_search_many, write_result  # noqa: E402

from repro.core.search import RotationQuery, early_abandon_search  # noqa: E402
from repro.distances.euclidean import EuclideanMeasure, ea_euclidean_distance  # noqa: E402


def synthetic_database(m: int, n: int, seed: int = 2006) -> np.ndarray:
    """Z-normalised random-walk series: smooth, shape-like, distinct."""
    rng = np.random.default_rng(seed)
    walks = np.cumsum(rng.normal(size=(m, n)), axis=1)
    walks -= walks.mean(axis=1, keepdims=True)
    walks /= walks.std(axis=1, keepdims=True)
    return walks


def per_pair_linear_scan(database, rotations: np.ndarray):
    """The seed engine: one scalar early-abandoning call per (object, rotation).

    Semantically identical to ``early_abandon_search`` -- same scan order,
    same running best-so-far -- but with every distance going through the
    per-pair ``ea_euclidean_distance``, which is what every hot path did
    before the batch kernels landed.
    """
    best = math.inf
    best_index, best_rotation = -1, -1
    steps = 0
    distance_calls = 0
    abandons = 0
    for i, obj in enumerate(database):
        running = best
        local_rotation = -1
        for t in range(rotations.shape[0]):
            dist, pair_steps = ea_euclidean_distance(obj, rotations[t], running)
            steps += pair_steps
            distance_calls += 1
            if math.isinf(dist):
                abandons += 1
            elif dist < running:
                running = dist
                local_rotation = t
        if local_rotation >= 0 and running < best:
            best, best_index, best_rotation = running, i, local_rotation
    return {
        "index": best_index,
        "rotation": best_rotation,
        "distance": best,
        "steps": steps,
        "distance_calls": distance_calls,
        "early_abandons": abandons,
    }


def compare_linear_scans(m: int, n: int) -> tuple[list[str], float]:
    """Race the per-pair path against the batched engine; verify exact parity."""
    archive = synthetic_database(m + 1, n)
    database = list(archive[:m])
    query = archive[m]
    rq = RotationQuery(query)
    measure = EuclideanMeasure()

    start = perf_counter()
    reference = per_pair_linear_scan(database, rq.rotations)
    per_pair_seconds = perf_counter() - start

    batched_seconds = math.inf
    for _ in range(3):
        start = perf_counter()
        result = early_abandon_search(database, query, measure)
        batched_seconds = min(batched_seconds, perf_counter() - start)

    mismatches = []
    if result.index != reference["index"]:
        mismatches.append(f"index {result.index} != {reference['index']}")
    if result.rotation != reference["rotation"]:
        mismatches.append(f"rotation {result.rotation} != {reference['rotation']}")
    if not math.isclose(result.distance, reference["distance"], rel_tol=1e-9):
        mismatches.append(f"distance {result.distance} != {reference['distance']}")
    for key in ("steps", "distance_calls", "early_abandons"):
        got = getattr(result.counter, key)
        if got != reference[key]:
            mismatches.append(f"{key} {got} != {reference[key]}")
    if mismatches:
        raise SystemExit(
            "batched engine diverged from the per-pair reference: " + "; ".join(mismatches)
        )

    speedup = per_pair_seconds / batched_seconds
    lines = [
        f"Euclidean linear scan, m={m} objects, n={n} (all {n} rotations per object)",
        f"{'per-pair (seed) path':>24}: {per_pair_seconds:9.3f} s",
        f"{'batched kernels':>24}: {batched_seconds:9.3f} s",
        f"{'speedup':>24}: {speedup:9.1f} x",
        f"{'steps (both paths)':>24}: {reference['steps']}",
        f"{'nearest neighbour':>24}: #{result.index} @ rotation {result.rotation}",
    ]
    return lines, speedup


def compare_search_many(m: int, n: int, n_queries: int, jobs: int) -> list[str]:
    """Throughput of search_many at several pool sizes, parity enforced."""
    archive = synthetic_database(m + n_queries, n, seed=7)
    database = list(archive[:m])
    queries = list(archive[m:])
    measure = EuclideanMeasure()

    base_seconds, base_results = time_search_many(database, queries, measure, n_jobs=1)
    lines = [
        "",
        f"search_many wedge throughput, {n_queries} queries over the same database",
        f"{'n_jobs=1':>24}: {base_seconds:9.3f} s",
    ]
    for n_jobs in (2, jobs):
        seconds, results = time_search_many(database, queries, measure, n_jobs=n_jobs)
        for sequential, parallel in zip(base_results, results):
            if (
                sequential.index != parallel.index
                or sequential.counter.steps != parallel.counter.steps
            ):
                raise SystemExit(
                    f"search_many(n_jobs={n_jobs}) diverged from the sequential scan"
                )
        lines.append(f"{f'n_jobs={n_jobs}':>24}: {seconds:9.3f} s ({base_seconds / seconds:.1f}x)")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizes (120 x 128) instead of the 500 x 256 acceptance run"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, help="fail unless batched speedup reaches this floor"
    )
    args = parser.parse_args(argv)

    m, n = (120, 128) if args.quick else (500, 256)
    lines, speedup = compare_linear_scans(m, n)
    lines += compare_search_many(
        m=max(40, m // 4), n=n, n_queries=4 if args.quick else 8, jobs=4
    )
    write_result("batch_engine", "\n".join(lines))

    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: batched speedup {speedup:.1f}x below floor {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
