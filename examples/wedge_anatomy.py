"""Anatomy of a wedge search, drawn in the terminal.

Builds one query's rotation wedge tree and renders (Figures 6-8, 12):

1. the query's centroid-distance series;
2. a tight wedge over a few similar rotations vs the fat all-rotations
   root wedge -- the area/tightness trade-off that drives the dynamic-K
   policy;
3. a candidate overlaid on a wedge, with its out-of-envelope excursions
   (the LB_Keogh contributions) visible;
4. a DTW warping path inside its Sakoe-Chiba band.

Run:  python examples/wedge_anatomy.py
"""

import numpy as np

from repro import (
    EuclideanMeasure,
    RotationQuery,
    polygon_to_series,
    projectile_point,
    plot_series,
    plot_warping_matrix,
    plot_wedge,
)
from repro.distances.dtw import warping_path


def main() -> None:
    rng = np.random.default_rng(6)
    n = 72
    query = polygon_to_series(projectile_point(rng, "stemmed", jitter=0.02), n)

    print("=== the query: a stemmed projectile point as a series ===")
    print(plot_series(query, height=9))

    rq = RotationQuery(query)
    tree = rq.wedge_tree()
    measure = EuclideanMeasure()

    print("\n=== a tight wedge: a few adjacent rotations (smooth series) ===")
    fine = tree.frontier(16)
    tight = min((w for w in fine if w.cardinality > 1), key=lambda w: w.area())
    print(f"cardinality {tight.cardinality}, area {tight.area():.2f}")
    print(plot_wedge(tight, height=9))

    print("\n=== the root wedge: ALL rotations at once (fat, prunes little) ===")
    print(f"cardinality {tree.root.cardinality}, area {tree.root.area():.2f}")
    print(plot_wedge(tree.root, height=9))

    print("\n=== a candidate against the tight wedge ===")
    candidate = polygon_to_series(projectile_point(rng, "triangular", jitter=0.02), n)
    lb = measure.lower_bound(candidate, tight.upper, tight.lower)
    print(f"LB_Keogh = {lb:.3f}  (every * outside the band contributes)")
    print(plot_wedge(tight, candidate=candidate, height=9))

    print("\n=== a DTW warping path inside its band (R = 6) ===")
    other = polygon_to_series(projectile_point(rng, "stemmed", jitter=0.05), n)
    dist, path = warping_path(query, other, radius=6)
    print(f"DTW distance {dist:.3f} over {len(path)} path cells")
    print(plot_warping_matrix(path, n, radius=6, max_size=36))


if __name__ == "__main__":
    main()
