"""Searching a projectile-point archive from disk (Sections 5.3-5.4).

The paper's flagship application: an archive of projectile points
("arrowheads") too large for exhaustive comparison.  This script builds a
synthetic archive, then answers a broken-point query three ways:

1. early-abandoning linear scan (CPU baseline),
2. wedge search (the paper's CPU contribution),
3. the disk index: Fourier-magnitude filtering + wedge refinement,
   reporting the fraction of the archive actually fetched (Figure 24's
   metric).

Run:  python examples/projectile_point_search.py
"""

import numpy as np

from repro import (
    EuclideanMeasure,
    LCSSMeasure,
    SignatureFilteredScan,
    early_abandon_search,
    polygon_to_series,
    projectile_point,
    projectile_point_collection,
    wedge_search,
)
from repro.timeseries.ops import circular_shift


def main() -> None:
    rng = np.random.default_rng(17)
    n = 251  # the paper's projectile-point series length
    archive_size = 400

    print(f"=== building an archive of {archive_size} points (length {n}) ===")
    archive = projectile_point_collection(rng, archive_size, length=n)

    # The query: a stemmed point, freshly excavated at an arbitrary
    # orientation.
    query_poly = projectile_point(rng, "stemmed", jitter=0.04)
    query = circular_shift(polygon_to_series(query_poly, n), int(rng.integers(n)))
    measure = EuclideanMeasure()

    print("\n=== CPU: scan vs wedges ===")
    scan = early_abandon_search(archive, query, measure)
    wedge = wedge_search(archive, query, measure)
    assert scan.index == wedge.index
    brute_steps = archive_size * n * n
    print(
        f"early-abandon scan: {scan.counter.steps:>12,} steps "
        f"({scan.counter.steps / brute_steps:.2%} of brute force)"
    )
    print(
        f"wedge search:       {wedge.counter.steps:>12,} steps "
        f"({wedge.counter.steps / brute_steps:.2%} of brute force)"
    )

    print("\n=== disk: filter-and-refine index ===")
    for d in (8, 16, 32):
        index = SignatureFilteredScan(archive, n_coefficients=d)
        answer = index.query(query, measure)
        assert answer.result.index == wedge.index
        print(
            f"D={d:>2} Fourier coefficients: fetched "
            f"{answer.objects_retrieved}/{archive_size} objects "
            f"({answer.fraction_retrieved:.2%})"
        )

    print("\n=== a broken point, matched with LCSS ===")
    broken_poly = projectile_point(np.random.default_rng(17), "stemmed", jitter=0.04, broken_tip=True)
    broken = circular_shift(polygon_to_series(broken_poly, n), int(rng.integers(n)))
    lcss = LCSSMeasure(delta=5, epsilon=0.5)
    result = wedge_search(archive[:100], broken, lcss)
    print(f"LCSS match: object {result.index}, distance {result.distance:.3f}")
    print("LCSS simply ignores the missing tip instead of forcing an")
    print("unnatural alignment (Figure 15).")


if __name__ == "__main__":
    main()
