"""Indexing star light curves (Section 2.4 and Figures 22-23).

A folded light curve has no natural phase origin, so comparing two curves
means testing every circular shift -- the rotation-invariance problem,
verbatim.  This script simulates a small survey archive of periodic
variables, runs a nearest-neighbour query with the wedge search under both
Euclidean distance and DTW, and then classifies the archive to show the
class structure is recoverable despite the random phases.

Run:  python examples/lightcurve_indexing.py
"""

import numpy as np

from repro import (
    DTWMeasure,
    EuclideanMeasure,
    NearestNeighborClassifier,
    early_abandon_search,
    light_curve,
    wedge_search,
)
from repro.datasets.lightcurve_data import light_curve_labelled_dataset


def main() -> None:
    rng = np.random.default_rng(2026)
    length = 256

    print("=== a small survey archive ===")
    dataset = light_curve_labelled_dataset(rng, per_class=12, length=length)
    print(f"{len(dataset)} curves, classes: {', '.join(dataset.class_names)}")

    print("\n=== nearest-neighbour query, unknown phase ===")
    target = light_curve(rng, "rr_lyrae", length=length)
    for measure in (EuclideanMeasure(), DTWMeasure(radius=5)):
        result = wedge_search(dataset.series, target, measure)
        baseline = early_abandon_search(dataset.series, target, measure)
        match_class = dataset.class_names[dataset.labels[result.index]]
        assert result.index == baseline.index
        print(
            f"{measure.name:>9}: matched a {match_class:<16} "
            f"dist={result.distance:6.3f}  wedge steps={result.counter.steps:>9,} "
            f"(early-abandon scan: {baseline.counter.steps:>10,})"
        )

    print("\n=== can we tell the classes apart at random phase? ===")
    half = len(dataset) // 2
    order = rng.permutation(len(dataset))
    train, test = order[:half], order[half:]
    clf = NearestNeighborClassifier(EuclideanMeasure())
    clf.fit(dataset.series[train], dataset.labels[train])
    predictions = clf.predict(dataset.series[test])
    accuracy = float(np.mean(predictions == dataset.labels[test]))
    print(f"1-NN accuracy over {len(test)} held-out curves: {accuracy:.1%}")
    print("\nThe identical machinery indexes shapes and light curves --")
    print("'without modification', as the paper puts it.")


if __name__ == "__main__":
    main()
