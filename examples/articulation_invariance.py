"""Articulation invariance of the centroid-distance method (Figure 18).

The paper takes three Lepidoptera (two of them very similar species),
copies each, "bends" the right hindwing of the copies in a photo editor,
and clusters all six under rotation-invariant Euclidean distance: every
bent copy pairs with its original, demonstrating that the centroid-based
1-D representation is robust to articulation (unlike Hausdorff-style
boundary measures -- the paper's bent-car-antenna thought experiment).

Run:  python examples/articulation_invariance.py
"""

import numpy as np

from repro import Dendrogram, brute_force_search, butterfly, linkage, polygon_to_series
from repro.distances.euclidean import EuclideanMeasure

from repro.shapes.transforms import articulate_polygon


def main() -> None:
    rng = np.random.default_rng(11)

    # Three species: two Actias-like close relatives plus a distant one.
    species = {
        "Actias maenas": dict(forewing=1.0, hindwing=0.78),
        "Actias philippinica": dict(forewing=0.88, hindwing=0.62),
        "Chorinea amazon": dict(forewing=0.6, hindwing=1.1),
    }

    series, labels = [], []
    for name, wings in species.items():
        base_seed = int(rng.integers(1 << 30))
        poly = butterfly(np.random.default_rng(base_seed), **wings)
        # The copy is the same individual with the right hindwing region
        # bent in "a photo editing program" (vertex-space articulation),
        # plus an unrelated random rotation.
        bent = articulate_polygon(poly, center_fraction=2 / 3, width_fraction=0.18, degrees=25)
        for variant, outline in (("original", poly), ("bent-wing copy", bent)):
            raw = polygon_to_series(outline, 128)
            # Random rotation = random circular shift of the series.
            series.append(np.roll(raw, int(rng.integers(128))))
            labels.append(f"{name} ({variant})")

    measure = EuclideanMeasure()
    k = len(series)
    matrix = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            d = brute_force_search([series[j]], series[i], measure).distance
            matrix[i, j] = matrix[j, i] = d

    dendro = Dendrogram(linkage(matrix, "average"), k, labels)
    print(dendro.render(max_width=100))

    correct = 0
    for node in dendro.root:
        if not node.is_leaf and all(child.is_leaf for child in node.children):
            a, b = (labels[child.id] for child in node.children)
            if a.split(" (")[0] == b.split(" (")[0]:
                correct += 1
    print(f"\noriginal/bent pairs clustered together: {correct} / 3")
    print("The 1-D centroid representation barely changes when a wing is")
    print("bent, so boundary-based matching is NOT intrinsically brittle to")
    print("articulation -- the brittleness lies in measures like Hausdorff.")


if __name__ == "__main__":
    main()
