"""Hand-geometry verification with trajectory matching (the [25] lineage).

The paper notes its conference version was adopted "to index hand
geometries for biometrics" -- closed 2-D traces of a hand outline, where
the tracing may begin anywhere along the wrist.  Trajectories are the
multi-dimensional case: each sample is an (x, y) point, and the start
point is the rotation degree of freedom.

This script enrols several synthetic "subjects" (each with a
characteristic finger-length profile), then verifies probe traces that
are re-started, re-scaled, and noisy -- and shows a DTW comparison
absorbing a local tracing slowdown.

Run:  python examples/hand_geometry_trajectories.py
"""

import numpy as np

from repro import trajectory_dtw, trajectory_search


def hand_outline(rng, finger_lengths, n=160, noise=0.004):
    """A closed hand-like outline: five finger lobes over a palm circle."""
    t = np.linspace(0, 2 * np.pi, n, endpoint=False)
    radius = 0.55 * np.ones(n)
    centers = np.linspace(0.6, 2.5, 5)  # finger directions (radians)
    for center, length in zip(centers, finger_lengths):
        angle = (t - center + np.pi) % (2 * np.pi) - np.pi
        radius += length * np.exp(-(angle**2) / 0.006)
    radius *= 1.0 + rng.normal(0.0, noise, n)
    return np.column_stack([radius * np.cos(t), radius * np.sin(t)])


def main() -> None:
    rng = np.random.default_rng(25)

    subjects = {
        "alice": [0.95, 1.15, 1.25, 1.10, 0.70],
        "bob": [0.80, 1.05, 1.10, 1.00, 0.60],
        "carol": [1.05, 1.30, 1.35, 1.25, 0.85],
        "dave": [0.90, 1.00, 1.20, 0.95, 0.75],
    }

    print("=== enrolment: one template trace per subject ===")
    names = list(subjects)
    templates = [hand_outline(rng, subjects[name]) for name in names]
    print(f"{len(templates)} subjects, {templates[0].shape[0]} boundary points each")

    print("\n=== verification: re-started, re-scaled, noisy probes ===")
    correct = 0
    trials = 8
    for trial in range(trials):
        name = names[trial % len(names)]
        probe = hand_outline(rng, subjects[name], noise=0.01)
        probe = np.roll(probe, int(rng.integers(160)), axis=0)  # arbitrary start
        probe = probe * float(rng.uniform(0.7, 1.4))  # camera distance
        result = trajectory_search(templates, probe)
        claimed = names[result.index]
        ok = claimed == name
        correct += ok
        print(
            f"probe of {name:<6} -> matched {claimed:<6} "
            f"(distance {result.distance:.3f}, start {result.rotation:>3}) "
            f"{'ok' if ok else 'WRONG'}"
        )
    print(f"\nverification accuracy: {correct}/{trials}")
    assert correct == trials

    print("\n=== a shaky trace: DTW absorbs the local slowdown ===")
    steady = hand_outline(np.random.default_rng(7), subjects["alice"], noise=0.0)
    shaky = np.vstack([steady[:50], steady[50:51].repeat(6, axis=0), steady[50:-6]])
    shaky = shaky[: steady.shape[0]]
    euclidean = float(np.linalg.norm(steady - shaky))
    dtw = trajectory_dtw(steady, shaky, radius=8)
    print(f"Euclidean: {euclidean:.3f}   trajectory DTW (R=8): {dtw:.3f}")
    assert dtw < euclidean
    print("\nSame wedges, same guarantees -- the samples just happen to be 2-D.")


if __name__ == "__main__":
    main()
