"""Quickstart: rotation-invariant shape matching end to end.

Walks the full pipeline of the paper's Figure 2 and Section 4:

1. generate shapes and rasterise one to a bitmap,
2. trace its boundary and convert it to a centroid-distance time series,
3. search a small database for the best rotation-invariant match with
   every strategy (brute force, early abandon, FFT, wedge), confirming
   they agree while costing very different amounts of work.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    EuclideanMeasure,
    brute_force_search,
    circular_shift,
    contour_to_series,
    early_abandon_search,
    fft_search,
    largest_contour,
    polygon_to_series,
    rasterize_polygon,
    regular_polygon,
    star_polygon,
    wedge_search,
)
from repro.shapes.image import render_ascii


def main() -> None:
    rng = np.random.default_rng(42)

    print("=== Step 1: a shape, as a bitmap ===")
    star = star_polygon(5)
    bitmap = rasterize_polygon(star, resolution=32)
    print(render_ascii(bitmap))

    print("\n=== Step 2: bitmap -> boundary -> time series (Figure 2) ===")
    boundary = largest_contour(bitmap)
    series = contour_to_series(boundary, n_points=128)
    print(f"boundary pixels: {len(boundary)}, series length: {series.size}")

    print("\n=== Step 3: a database of shapes, randomly rotated ===")
    # Rotating an image moves the boundary-trace starting point, which
    # circularly shifts the centroid-distance series -- so random rotation
    # is emulated by a random circular shift (Section 3).  Ten noisy
    # specimens of each shape family make a database of 120 objects; the
    # wedge machinery needs a few dozen objects to amortise its O(n^2)
    # start-up (the paper breaks even at 64).
    database = []
    descriptions = []
    families = [(f"{sides}-gon", regular_polygon(sides)) for sides in range(3, 9)]
    families += [(f"{points}-pointed star", star_polygon(points)) for points in range(3, 9)]
    for name, polygon in families:
        raw = polygon_to_series(polygon, 128)
        for specimen in range(10):
            noisy = raw + rng.normal(0.0, 0.05, raw.size)
            database.append(circular_shift(noisy, int(rng.integers(128))))
            descriptions.append(name)

    query = series  # the 5-pointed star, via the full bitmap pipeline
    measure = EuclideanMeasure()

    print("\n=== Step 4: four exact search strategies, one answer ===")
    for search in (brute_force_search, early_abandon_search, fft_search, wedge_search):
        if search is fft_search:
            result = search(database, query)
        else:
            result = search(database, query, measure)
        print(
            f"{result.strategy:>14}: best match = {descriptions[result.index]:<16} "
            f"distance = {result.distance:7.4f}  steps = {result.counter.steps:>9,}"
        )

    print("\nAll four strategies are exact: they return the same nearest")
    print("neighbour, guaranteed (Proposition 1 -- no false dismissals).")
    print("On this toy database of spiky polygons the early-abandon scan is")
    print("already cheap; the wedge search pulls ahead on larger archives of")
    print("smooth real-world contours, where groups of adjacent rotations")
    print("form tight envelopes -- run examples/projectile_point_search.py")
    print("and the Figure 19-23 benchmarks to watch the gap grow with m.")


if __name__ == "__main__":
    main()
