"""Finding unusual light curves in a survey archive (Section 2.4's citation).

The paper motivates its astronomy application with Protopapas et al.'s
outlier hunt: "researchers discover unusual light curves worthy of further
examination by finding the examples with the least similarity to other
objects".  The subtlety is phase: a perfectly ordinary star observed at a
different phase must NOT be flagged -- which is why the similarity must be
circular-shift (rotation) invariant.

This script simulates a small survey, injects two anomalies (a flare-like
transient and a double-humped oddity), and mines the archive with
rotation-invariant discord discovery.  It also shows motif discovery (the
two most similar stars) and a k-NN query for follow-up candidates.

Run:  python examples/anomalous_lightcurves.py
"""

import numpy as np

from repro import (
    EuclideanMeasure,
    find_discords,
    find_motif,
    knn_search,
    light_curve,
    znormalize,
)
from repro.timeseries.ops import circular_shift


def flare_transient(rng, length):
    """A single sharp flare on a flat baseline -- not a periodic variable."""
    t = np.linspace(0, 1, length, endpoint=False)
    curve = 0.05 * rng.normal(size=length)
    curve += 3.0 * np.exp(-((t - 0.4) ** 2) / 0.0004)
    return znormalize(curve)


def double_humped_oddity(rng, length):
    """Two equal maxima per cycle -- unlike any of the ordinary classes."""
    t = np.linspace(0, 4 * np.pi, length, endpoint=False)
    curve = np.abs(np.sin(t)) + 0.05 * rng.normal(size=length)
    return znormalize(circular_shift(curve, int(rng.integers(length))))


def main() -> None:
    rng = np.random.default_rng(29)
    length = 256

    archive = []
    labels = []
    for kind in ("cepheid", "rr_lyrae", "eclipsing_binary"):
        for _ in range(10):
            archive.append(light_curve(rng, kind, length=length))
            labels.append(kind)
    anomalies = {len(archive): "flare transient", len(archive) + 1: "double-humped oddity"}
    archive.append(flare_transient(rng, length))
    labels.append("ANOMALY?")
    archive.append(double_humped_oddity(rng, length))
    labels.append("ANOMALY?")

    measure = EuclideanMeasure()

    print(f"=== mining {len(archive)} light curves for the 3 strongest discords ===")
    discords = find_discords(archive, measure, top=3)
    for rank, discord in enumerate(discords, 1):
        tag = anomalies.get(discord.index, labels[discord.index])
        print(
            f"{rank}. object {discord.index:>2} ({tag:<22}) "
            f"nearest-neighbour distance {discord.nn_distance:6.2f}"
        )
    found = {d.index for d in discords[:2]}
    assert found == set(anomalies), "the injected anomalies should lead the list"

    print("\n=== the archive's motif (most similar pair, any phase) ===")
    motif = find_motif(archive, measure)
    print(
        f"objects {motif.first} ({labels[motif.first]}) and {motif.second} "
        f"({labels[motif.second]}), distance {motif.distance:.3f}, "
        f"aligned at shift {motif.rotation}"
    )
    assert labels[motif.first] == labels[motif.second]

    print("\n=== follow-up: 3 stars most similar to the double-humped oddity ===")
    oddity = archive[-1]
    rest = archive[:-1]
    for nb in knn_search(rest, oddity, measure, k=3):
        print(f"object {nb.index:>2} ({labels[nb.index]:<16}) distance {nb.distance:6.2f}")

    print("\nPhase never mattered: a re-phased ordinary star is nobody's outlier.")


if __name__ == "__main__":
    main()
