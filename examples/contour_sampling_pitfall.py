"""The contour-sampling pitfall (Section 2.3's fish anecdote).

Many shape-matching systems downsample contours aggressively to make the
distance measure tractable -- the fish-recognition system the paper
discusses kept just 40 boundary points and "found that a reduced data set
of 40 points was sufficient".  The paper disagrees: with full-resolution
contours and plain rotation-invariant Euclidean distance it scored 88.57%
accuracy against the tuned system's 64%.

This script reproduces the *mechanism*: classify the same synthetic fish
at several contour resolutions and watch accuracy fall as the sampling
gets coarse -- while the wedge machinery keeps the full-resolution match
affordable, removing the reason to downsample in the first place.

Run:  python examples/contour_sampling_pitfall.py
"""

import numpy as np

from repro import EuclideanMeasure, leave_one_out_error
from repro.datasets.shapes_data import Dataset
from repro.shapes.convert import polygon_to_series
from repro.shapes.generators import fourier_blob


def build_fish(rng, per_class=6):
    """Fish-like outlines sharing one body plan, differing in fine detail.

    Every class has the same low-order "body" (so coarse samplings cannot
    tell them apart) plus a class-specific high-order "fin pattern" --
    order 13-21 undulations that an 8- or 16-point contour aliases away
    entirely (Nyquist) but a 128-point contour preserves.  This mirrors the
    fish systems the paper criticises: the features that matter live in
    the detail the downsampling throws out.
    """
    body = [(2, 0.30, 0.4), (3, 0.12, 1.1)]  # shared across classes
    classes = []
    for _ in range(5):
        order = int(rng.integers(13, 22))
        phase = float(rng.uniform(0, 2 * np.pi))
        classes.append(body + [(order, 0.14, phase)])
    polygons, labels = [], []
    for label, harmonics in enumerate(classes):
        for _ in range(per_class):
            polygons.append(fourier_blob(rng, harmonics, jitter=0.06))
            labels.append(label)
    return polygons, np.asarray(labels)


def main() -> None:
    rng = np.random.default_rng(19)
    polygons, labels = build_fish(rng)
    measure = EuclideanMeasure()

    # Each specimen arrives at an arbitrary orientation: roll the polygon
    # itself, so the rotation falls *between* the samples of a coarse
    # contour (a real photograph is not rotated by multiples of 45
    # degrees).  A fine contour can absorb any rotation as a near-integer
    # shift; an 8-point contour cannot.
    rolled = [np.roll(poly, int(rng.integers(poly.shape[0])), axis=0) for poly in polygons]

    print("1-NN leave-one-out error vs contour resolution (rotation-invariant ED)")
    print(f"{'points on contour':>20} {'error':>8}")
    errors = {}
    for resolution in (8, 16, 40, 128):
        series = np.vstack([polygon_to_series(poly, resolution) for poly in rolled])
        dataset = Dataset(f"fish-{resolution}", series, labels)
        errors[resolution] = leave_one_out_error(dataset, measure)
        print(f"{resolution:>20} {errors[resolution]:>7.1f}%")

    assert errors[128] < errors[8], "full resolution should beat 8 points"
    assert errors[128] <= min(errors[16], errors[40])
    print("\nCoarse sampling throws away the features that separate the classes.")
    print("The paper's point: you do not need to downsample -- the wedge")
    print("machinery makes full-resolution rotation-invariant matching cheap")
    print("(run examples/projectile_point_search.py to see the step counts).")


if __name__ == "__main__":
    main()
