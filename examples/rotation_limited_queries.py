"""Rotation-limited and mirror-image queries (Section 3's generalisations).

Two retrieval subtleties the paper's framework handles by construction:

* a "6" and a "9" are the same shape at 180 degrees -- a fully
  rotation-invariant query for "6" happily retrieves "9"s, so the paper
  supports *rotation-limited* queries ("allow a maximum rotation of 15
  degrees");
* a "d" and a "b" are mirror images -- matching skulls should span
  mirrors (a skull may face either way), but matching letters should not.

This script builds asymmetric digit-like glyphs and letter-like glyphs and
shows how the ``max_degrees`` and ``mirror`` knobs change what a query
retrieves.

Run:  python examples/rotation_limited_queries.py
"""

import numpy as np

from repro import EuclideanMeasure, circular_shift, polygon_to_series, wedge_search
from repro.shapes.generators import fourier_blob
from repro.shapes.transforms import mirror_polygon


def glyph_six(rng: np.random.Generator) -> np.ndarray:
    """An asymmetric blob standing in for the digit '6'."""
    return fourier_blob(
        rng, harmonics=[(1, 0.35, 0.3), (2, 0.18, 1.2), (3, 0.12, 2.0)], jitter=0.01
    )


def glyph_bee(rng: np.random.Generator) -> np.ndarray:
    """A chiral blob standing in for the letter 'b' (its mirror is 'd')."""
    return fourier_blob(
        rng, harmonics=[(1, 0.25, 0.0), (2, 0.2, 0.9), (5, 0.15, 0.4)], jitter=0.01
    )


def main() -> None:
    rng = np.random.default_rng(3)
    measure = EuclideanMeasure()
    n = 128

    print("=== rotation-limited queries: '6' vs '9' ===")
    # Image rotation = circular shift of the series: 180 degrees is a shift
    # of n/2 samples, 8 degrees a shift of n*8/360.
    six = polygon_to_series(glyph_six(rng), n)
    perfect_nine = circular_shift(polygon_to_series(glyph_six(np.random.default_rng(99)), n), n // 2)
    tilt = int(round(8.0 * n / 360.0))
    slightly_tilted_six = circular_shift(
        polygon_to_series(glyph_six(np.random.default_rng(99)), n), tilt
    )
    # Tiny measurement noise so the two database glyphs are real specimens,
    # not byte-identical copies of the query archetype.
    noise = np.random.default_rng(1)
    database = [
        perfect_nine + noise.normal(0, 0.02, n),
        slightly_tilted_six + noise.normal(0, 0.02, n),
    ]
    names = ["a '9' (the 6, upside down)", "a '6' tilted by 8 degrees"]

    unrestricted = wedge_search(database, six, measure)
    limited = wedge_search(database, six, measure, max_degrees=15.0)
    print(f"unrestricted query retrieves:  {names[unrestricted.index]} (distance {unrestricted.distance:.4f})")
    print(f"max-15-degree query retrieves: {names[limited.index]} (distance {limited.distance:.4f})")
    assert limited.index == 1, "the rotation-limited query must not reach the '9'"

    print("\n=== mirror-image queries: 'b' vs 'd' ===")
    bee = polygon_to_series(glyph_bee(rng), n)
    dee_poly = mirror_polygon(glyph_bee(np.random.default_rng(5)))
    dee = circular_shift(polygon_to_series(dee_poly, n), int(round(40.0 * n / 360.0)))

    plain = wedge_search([dee], bee, measure)
    mirrored = wedge_search([dee], bee, measure, mirror=True)
    print(f"query 'b' vs 'd', mirror OFF: distance {plain.distance:.4f} (letters stay distinct)")
    print(f"query 'b' vs 'd', mirror ON:  distance {mirrored.distance:.4f} (skulls may face either way)")

    assert mirrored.distance < plain.distance
    print("\nBoth behaviours come from the same machinery: rows are simply")
    print("added to / removed from the rotation matrix C before wedge building.")


if __name__ == "__main__":
    main()
