"""The production index lifecycle: build once, persist, query warm.

A survey archive is indexed once (signatures + structure + buffer-pool
config), saved as a checksummed format-v2 archive, and later reloaded by
query processes that never pay the build cost -- optionally memory-mapped,
so the collection is demand-paged straight from the ``.data.npy`` sidecar
instead of being materialised in RAM.  The buffer-pool configuration
survives the round trip, so the page-fault accounting means the same thing
before and after.

Run:  python examples/build_and_persist_index.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    DTWMeasure,
    EuclideanMeasure,
    SignatureFilteredScan,
    inspect_archive,
    load_index,
    projectile_point_collection,
    save_index,
)


def main() -> None:
    rng = np.random.default_rng(8)
    archive = projectile_point_collection(rng, 300, length=128)

    print("=== build: signatures + VP-tree + buffer-pool config, once ===")
    t0 = time.time()
    index = SignatureFilteredScan(
        archive, n_coefficients=16, structure="vptree", page_size=8, buffer_pages=16
    )
    build_time = time.time() - t0
    print(f"indexed {len(index)} objects in {build_time:.2f}s")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "survey_index.npz"
        save_index(index, path)
        sidecar = path.with_name(path.stem + ".data.npy")
        print(
            f"persisted to {path.name} ({path.stat().st_size / 1024:.0f} KiB) "
            f"+ {sidecar.name} ({sidecar.stat().st_size / 1024:.0f} KiB)"
        )
        info = inspect_archive(path)
        print(
            f"archive: format v{info['format_version']}, "
            f"{len(info['checksums'])} checksummed arrays, "
            f"disk store {info['disk_store']}"
        )

        print("\n=== reload in a fresh 'process': verified, no recomputation ===")
        query = archive[42] + rng.normal(0, 0.05, 128)
        for mmap in (False, True):
            t0 = time.time()
            reloaded = load_index(path, mmap=mmap)
            load_time = time.time() - t0
            mode = "mmap" if mmap else "in-RAM"
            print(
                f"{mode:>7}: loaded + checksum-verified in {load_time:.3f}s "
                f"(build was {build_time:.2f}s); "
                f"page_size={reloaded.store.page_size}, "
                f"buffer_pages={reloaded.store.buffer_pages}"
            )

            for measure in (EuclideanMeasure(), DTWMeasure(radius=5)):
                a = index.query(query, measure)
                b = reloaded.query(query, measure)
                assert a.result.index == b.result.index
                assert a.result.distance == b.result.distance
                print(
                    f"  {measure.name:>9}: match object {b.result.index}, "
                    f"fetched {b.objects_retrieved}/{len(reloaded)} objects "
                    f"({reloaded.store.page_faults} page faults)"
                )

    print("\n=== buffer-pool accounting across a repeat-query workload ===")
    store = index.store
    store.reset()
    store.flush()
    hot_objects = [3, 17, 42, 3, 17, 42, 3, 17, 42, 99, 3]
    for i in hot_objects:
        store.fetch(i)
    print(
        f"{store.retrievals} logical retrievals -> {store.page_faults} physical "
        f"page faults ({store.n_pages} pages total, 16-page LRU pool)"
    )
    print("\nSignatures answer the cheap questions in memory; the pool")
    print("absorbs the re-reads; the disk sees only what neither could avoid.")


if __name__ == "__main__":
    main()
