"""The production index lifecycle: build once, persist, query warm.

A survey archive is indexed once (signatures + structure), saved to disk,
and later reloaded by query processes that never pay the build cost.  The
script also shows the page/buffer-pool accounting: with a warm pool,
repeat queries touch far fewer physical pages than logical objects.

Run:  python examples/build_and_persist_index.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    DTWMeasure,
    EuclideanMeasure,
    SignatureFilteredScan,
    load_index,
    projectile_point_collection,
    save_index,
)
from repro.index.disk import DiskStore


def main() -> None:
    rng = np.random.default_rng(8)
    archive = projectile_point_collection(rng, 300, length=128)

    print("=== build: signatures + VP-tree, once ===")
    t0 = time.time()
    index = SignatureFilteredScan(archive, n_coefficients=16, structure="vptree")
    build_time = time.time() - t0
    print(f"indexed {len(index)} objects in {build_time:.2f}s")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "survey_index.npz"
        save_index(index, path)
        print(f"persisted to {path.name} ({path.stat().st_size / 1024:.0f} KiB)")

        print("\n=== reload in a fresh 'process': no signature recomputation ===")
        t0 = time.time()
        reloaded = load_index(path)
        load_time = time.time() - t0
        print(f"loaded in {load_time:.3f}s (build was {build_time:.2f}s)")

        query = archive[42] + rng.normal(0, 0.05, 128)
        for measure in (EuclideanMeasure(), DTWMeasure(radius=5)):
            a = index.query(query, measure)
            b = reloaded.query(query, measure)
            assert a.result.index == b.result.index
            print(
                f"{measure.name:>9}: match object {b.result.index}, "
                f"fetched {b.objects_retrieved}/{len(reloaded)} objects"
            )

    print("\n=== buffer-pool accounting across a repeat-query workload ===")
    store = DiskStore(archive, page_size=8, buffer_pages=16)
    hot_objects = [3, 17, 42, 3, 17, 42, 3, 17, 42, 99, 3]
    for i in hot_objects:
        store.fetch(i)
    print(
        f"{store.retrievals} logical retrievals -> {store.page_faults} physical "
        f"page faults ({store.n_pages} pages total, 16-page LRU pool)"
    )
    print("\nSignatures answer the cheap questions in memory; the pool")
    print("absorbs the re-reads; the disk sees only what neither could avoid.")


if __name__ == "__main__":
    main()
