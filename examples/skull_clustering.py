"""Clustering skulls: landmark alignment vs best-rotation alignment (Figures 3 & 16).

The paper's motivating experiment: aligning shapes by a "landmark" (the
major axis, a fixed starting angle, ...) is brittle -- a small rotation
error produces a large distance error and biologically meaningless
clusters.  Testing all rotations fixes it.

This script builds three "taxa" of skull-like outlines (two of them
closely related, one distant), produces two specimens of each at random
orientations, and clusters them twice:

* once with distances at the *raw* (landmark) alignment,
* once with the rotation-invariant distance.

The rotation-invariant dendrogram pairs conspecifics; the landmark one
usually does not.

Run:  python examples/skull_clustering.py
"""

import numpy as np

from repro import (
    Dendrogram,
    brute_force_search,
    circular_shift,
    linkage,
    polygon_to_series,
    skull_profile,
)
from repro.distances.euclidean import EuclideanMeasure, euclidean_distance


def build_specimens(rng: np.random.Generator):
    """Two specimens each of three taxa, at random orientations.

    Rotating an image moves the point at which the boundary trace starts,
    which circularly shifts the centroid-distance series -- so a "randomly
    rotated" specimen is its series at a random circular shift (Section 3).
    """
    taxa = {
        # name: (braincase, brow, jaw) -- the morphology knobs.
        "owl-monkey-A": (0.70, 0.06, 0.15),
        "owl-monkey-B": (1.00, 0.15, 0.35),  # congeneric: similar but distinct
        "orangutan": (1.40, 0.32, 0.60),  # distant
    }
    series, labels = [], []
    for name, (braincase, brow, jaw) in taxa.items():
        for specimen in (1, 2):
            poly = skull_profile(rng, braincase=braincase, brow=brow, jaw=jaw, jitter=0.005)
            raw = polygon_to_series(poly, 128)
            series.append(circular_shift(raw, int(rng.integers(128))))
            labels.append(f"{name}-{specimen}")
    return series, labels


def distance_matrix(series, rotation_invariant: bool) -> np.ndarray:
    measure = EuclideanMeasure()
    k = len(series)
    matrix = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            if rotation_invariant:
                d = brute_force_search([series[j]], series[i], measure).distance
            else:
                d = euclidean_distance(series[i], series[j])
            matrix[i, j] = matrix[j, i] = d
    return matrix


def purity(dendrogram: Dendrogram, labels) -> int:
    """How many same-taxon pairs end up as dendrogram siblings."""
    taxa = [label.rsplit("-", 1)[0] for label in labels]
    paired = 0
    for node in dendrogram.root:
        if not node.is_leaf and all(child.is_leaf for child in node.children):
            a, b = (child.id for child in node.children)
            if taxa[a] == taxa[b]:
                paired += 1
    return paired


def main() -> None:
    rng = np.random.default_rng(7)
    series, labels = build_specimens(rng)

    for mode, invariant in (("landmark (raw) alignment", False), ("best-rotation alignment", True)):
        matrix = distance_matrix(series, rotation_invariant=invariant)
        dendro = Dendrogram(linkage(matrix, "average"), len(series), labels)
        print(f"=== {mode} ===")
        print(dendro.render())
        print(f"conspecific sibling pairs: {purity(dendro, labels)} / 3\n")

    print("Rotation (mis)alignment is the most important invariance for")
    print("shape matching: unless we have the best rotation, nothing else")
    print("matters (Section 2.1).")


if __name__ == "__main__":
    main()
